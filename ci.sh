#!/usr/bin/env bash
# Tier-1 verification: lint, then build + full test suite in four configs —
# plain Release, AddressSanitizer + UBSan (PMEMCPY_SANITIZE), the
# persistency-order checker build (PMEMCPY_PERSIST_CHECK, with violations
# fatal so any unconsumed finding fails the suite), and the tracing build
# (PMEMCPY_TRACE, every test with the observability layer recording).
#
#   ./ci.sh            # all configs
#   ./ci.sh release    # release only
#   ./ci.sh sanitize   # sanitizers only
#   ./ci.sh checker    # persist-checker config only
#   ./ci.sh trace      # tracing-enabled config only
set -euo pipefail
cd "$(dirname "$0")"

echo "==== lint ===="
scripts/lint.sh

run_config() {
  local name="$1"
  shift
  local dir="build-ci-${name}"
  echo "==== [${name}] configure ===="
  cmake -B "${dir}" -S . "$@"
  echo "==== [${name}] build ===="
  cmake --build "${dir}" -j"$(nproc)"
  echo "==== [${name}] test ===="
  # CTEST_ENV: extra KEY=VAL pairs exported into the test processes.
  env ${CTEST_ENV:-} ctest --test-dir "${dir}" --output-on-failure -j"$(nproc)"
  echo "==== [${name}] flush audit ===="
  # Deterministic flush/fence counts; fails if any phase's CLWB or SFENCE
  # traffic regressed past the checked-in baseline (see bench/flush_audit.cpp).
  "${dir}/bench/flush_audit" --json "${dir}/BENCH_flush_audit.json" \
    --baseline bench/flush_audit_baseline.json
}

run_checker_config() {
  CTEST_ENV="PMEMCPY_PERSIST_CHECK=1 PMEMCPY_PERSIST_CHECK_FATAL=1" \
    run_config checker -DCMAKE_BUILD_TYPE=Release -DPMEMCPY_PERSIST_CHECK=ON
}

run_trace_config() {
  # Spans are pure observers of the simulated clock, so this config also
  # proves that recording changes no timing, flush or fence number: the
  # flush-audit baseline gate inside run_config runs with tracing live.
  CTEST_ENV="PMEMCPY_TRACE=1" \
    run_config trace -DCMAKE_BUILD_TYPE=Release -DPMEMCPY_TRACE=ON
}

what="${1:-all}"

case "${what}" in
  release)
    run_config release -DCMAKE_BUILD_TYPE=Release
    ;;
  sanitize)
    run_config sanitize -DCMAKE_BUILD_TYPE=RelWithDebInfo -DPMEMCPY_SANITIZE=ON
    ;;
  checker)
    run_checker_config
    ;;
  trace)
    run_trace_config
    ;;
  all)
    run_config release -DCMAKE_BUILD_TYPE=Release
    run_config sanitize -DCMAKE_BUILD_TYPE=RelWithDebInfo -DPMEMCPY_SANITIZE=ON
    run_checker_config
    run_trace_config
    ;;
  *)
    echo "usage: $0 [release|sanitize|checker|trace|all]" >&2
    exit 2
    ;;
esac

echo "==== all configs green ===="
