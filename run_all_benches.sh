#!/bin/sh
# Runs every benchmark binary (paper figures, ablations, microbenches).
#
# Each bench runs with the persistency-order checker attached
# (PMEMCPY_PERSIST_CHECK=1): at exit it prints a
#   [pmemcpy-persist-check] store_ops=... flush_ops=... fence_ops=... ...
# line with the flush/fence-efficiency counters for that bench, so redundant
# CLWB/SFENCE traffic shows up next to the timing numbers it explains.
PMEMCPY_PERSIST_CHECK=1
export PMEMCPY_PERSIST_CHECK
for b in build/bench/*; do
  [ -x "$b" ] || continue
  echo "===================================================================="
  echo "== $b"
  echo "===================================================================="
  "$b" || echo "BENCH FAILED: $b"
  echo
done
