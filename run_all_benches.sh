#!/bin/sh
# Runs every benchmark binary (paper figures, ablations, microbenches).
#
# Each bench runs with the persistency-order checker attached
# (PMEMCPY_PERSIST_CHECK=1): at exit it prints a
#   [pmemcpy-persist-check] store_ops=... flush_ops=... fence_ops=... ...
# line with the flush/fence-efficiency counters for that bench, so redundant
# CLWB/SFENCE traffic shows up next to the timing numbers it explains.
#
# Tracing rides along (PMEMCPY_TRACE=<bench>.trace.json): each bench writes
# a Chrome trace_event JSON next to its binary plus a .stats.json in the
# same counter schema as the checker line and `flush_audit --json`, and the
# stats are echoed after the bench output.
PMEMCPY_PERSIST_CHECK=1
export PMEMCPY_PERSIST_CHECK
for b in build/bench/*; do
  [ -x "$b" ] || continue
  echo "===================================================================="
  echo "== $b"
  echo "===================================================================="
  PMEMCPY_TRACE="$b.trace.json" "$b" || echo "BENCH FAILED: $b"
  if [ -f "$b.trace.json.stats.json" ]; then
    echo "-- trace stats ($b.trace.json.stats.json)"
    cat "$b.trace.json.stats.json"
    echo
  fi
  echo
done
