#!/bin/sh
# Runs every benchmark binary (paper figures, ablations, microbenches).
for b in build/bench/*; do
  [ -x "$b" ] || continue
  echo "===================================================================="
  echo "== $b"
  echo "===================================================================="
  "$b" || echo "BENCH FAILED: $b"
  echo
done
