file(REMOVE_RECURSE
  "CMakeFiles/analysis_reader.dir/analysis_reader.cpp.o"
  "CMakeFiles/analysis_reader.dir/analysis_reader.cpp.o.d"
  "analysis_reader"
  "analysis_reader.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_reader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
