# Empty compiler generated dependencies file for analysis_reader.
# This may be replaced when dependencies are built.
