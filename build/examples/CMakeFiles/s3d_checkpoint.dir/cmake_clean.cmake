file(REMOVE_RECURSE
  "CMakeFiles/s3d_checkpoint.dir/s3d_checkpoint.cpp.o"
  "CMakeFiles/s3d_checkpoint.dir/s3d_checkpoint.cpp.o.d"
  "s3d_checkpoint"
  "s3d_checkpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s3d_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
