# Empty dependencies file for s3d_checkpoint.
# This may be replaced when dependencies are built.
