# Empty compiler generated dependencies file for burst_buffer.
# This may be replaced when dependencies are built.
