file(REMOVE_RECURSE
  "CMakeFiles/hierarchical_vars.dir/hierarchical_vars.cpp.o"
  "CMakeFiles/hierarchical_vars.dir/hierarchical_vars.cpp.o.d"
  "hierarchical_vars"
  "hierarchical_vars.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hierarchical_vars.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
