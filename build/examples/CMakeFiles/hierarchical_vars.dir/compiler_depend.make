# Empty compiler generated dependencies file for hierarchical_vars.
# This may be replaced when dependencies are built.
