# Empty dependencies file for api_showdown.
# This may be replaced when dependencies are built.
