file(REMOVE_RECURSE
  "CMakeFiles/api_showdown.dir/api_showdown.cpp.o"
  "CMakeFiles/api_showdown.dir/api_showdown.cpp.o.d"
  "api_showdown"
  "api_showdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/api_showdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
