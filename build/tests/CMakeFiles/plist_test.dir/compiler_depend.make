# Empty compiler generated dependencies file for plist_test.
# This may be replaced when dependencies are built.
