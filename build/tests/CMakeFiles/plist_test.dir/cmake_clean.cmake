file(REMOVE_RECURSE
  "CMakeFiles/plist_test.dir/plist_test.cpp.o"
  "CMakeFiles/plist_test.dir/plist_test.cpp.o.d"
  "plist_test"
  "plist_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plist_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
