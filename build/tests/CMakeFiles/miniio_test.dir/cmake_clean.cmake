file(REMOVE_RECURSE
  "CMakeFiles/miniio_test.dir/miniio_test.cpp.o"
  "CMakeFiles/miniio_test.dir/miniio_test.cpp.o.d"
  "miniio_test"
  "miniio_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/miniio_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
