# Empty dependencies file for miniio_test.
# This may be replaced when dependencies are built.
