file(REMOVE_RECURSE
  "CMakeFiles/pmemobj_test.dir/pmemobj_test.cpp.o"
  "CMakeFiles/pmemobj_test.dir/pmemobj_test.cpp.o.d"
  "pmemobj_test"
  "pmemobj_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmemobj_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
