# Empty dependencies file for pmemobj_test.
# This may be replaced when dependencies are built.
