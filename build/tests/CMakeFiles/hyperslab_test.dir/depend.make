# Empty dependencies file for hyperslab_test.
# This may be replaced when dependencies are built.
