file(REMOVE_RECURSE
  "CMakeFiles/hyperslab_test.dir/hyperslab_test.cpp.o"
  "CMakeFiles/hyperslab_test.dir/hyperslab_test.cpp.o.d"
  "hyperslab_test"
  "hyperslab_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperslab_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
