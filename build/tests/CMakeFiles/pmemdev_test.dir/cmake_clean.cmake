file(REMOVE_RECURSE
  "CMakeFiles/pmemdev_test.dir/pmemdev_test.cpp.o"
  "CMakeFiles/pmemdev_test.dir/pmemdev_test.cpp.o.d"
  "pmemdev_test"
  "pmemdev_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmemdev_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
