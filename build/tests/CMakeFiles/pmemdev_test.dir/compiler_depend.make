# Empty compiler generated dependencies file for pmemdev_test.
# This may be replaced when dependencies are built.
