file(REMOVE_RECURSE
  "CMakeFiles/pmemfs_test.dir/pmemfs_test.cpp.o"
  "CMakeFiles/pmemfs_test.dir/pmemfs_test.cpp.o.d"
  "pmemfs_test"
  "pmemfs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmemfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
