# Empty dependencies file for pmemfs_test.
# This may be replaced when dependencies are built.
