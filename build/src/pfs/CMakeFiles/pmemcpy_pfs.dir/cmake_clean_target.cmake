file(REMOVE_RECURSE
  "libpmemcpy_pfs.a"
)
