file(REMOVE_RECURSE
  "CMakeFiles/pmemcpy_pfs.dir/burst_buffer.cpp.o"
  "CMakeFiles/pmemcpy_pfs.dir/burst_buffer.cpp.o.d"
  "CMakeFiles/pmemcpy_pfs.dir/pfs.cpp.o"
  "CMakeFiles/pmemcpy_pfs.dir/pfs.cpp.o.d"
  "libpmemcpy_pfs.a"
  "libpmemcpy_pfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmemcpy_pfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
