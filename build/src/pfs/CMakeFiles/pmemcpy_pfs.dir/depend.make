# Empty dependencies file for pmemcpy_pfs.
# This may be replaced when dependencies are built.
