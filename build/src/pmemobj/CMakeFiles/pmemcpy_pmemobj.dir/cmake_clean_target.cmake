file(REMOVE_RECURSE
  "libpmemcpy_pmemobj.a"
)
