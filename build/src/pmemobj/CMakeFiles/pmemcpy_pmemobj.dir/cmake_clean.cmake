file(REMOVE_RECURSE
  "CMakeFiles/pmemcpy_pmemobj.dir/hashtable.cpp.o"
  "CMakeFiles/pmemcpy_pmemobj.dir/hashtable.cpp.o.d"
  "CMakeFiles/pmemcpy_pmemobj.dir/plist.cpp.o"
  "CMakeFiles/pmemcpy_pmemobj.dir/plist.cpp.o.d"
  "CMakeFiles/pmemcpy_pmemobj.dir/pool.cpp.o"
  "CMakeFiles/pmemcpy_pmemobj.dir/pool.cpp.o.d"
  "libpmemcpy_pmemobj.a"
  "libpmemcpy_pmemobj.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmemcpy_pmemobj.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
