# Empty compiler generated dependencies file for pmemcpy_pmemobj.
# This may be replaced when dependencies are built.
