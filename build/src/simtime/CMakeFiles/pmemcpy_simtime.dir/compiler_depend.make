# Empty compiler generated dependencies file for pmemcpy_simtime.
# This may be replaced when dependencies are built.
