file(REMOVE_RECURSE
  "libpmemcpy_simtime.a"
)
