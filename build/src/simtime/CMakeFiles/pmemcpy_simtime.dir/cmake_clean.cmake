file(REMOVE_RECURSE
  "CMakeFiles/pmemcpy_simtime.dir/context.cpp.o"
  "CMakeFiles/pmemcpy_simtime.dir/context.cpp.o.d"
  "libpmemcpy_simtime.a"
  "libpmemcpy_simtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmemcpy_simtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
