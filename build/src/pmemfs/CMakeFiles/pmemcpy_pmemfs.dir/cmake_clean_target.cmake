file(REMOVE_RECURSE
  "libpmemcpy_pmemfs.a"
)
