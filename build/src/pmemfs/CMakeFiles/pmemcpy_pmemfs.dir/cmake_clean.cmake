file(REMOVE_RECURSE
  "CMakeFiles/pmemcpy_pmemfs.dir/filesystem.cpp.o"
  "CMakeFiles/pmemcpy_pmemfs.dir/filesystem.cpp.o.d"
  "libpmemcpy_pmemfs.a"
  "libpmemcpy_pmemfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmemcpy_pmemfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
