# Empty compiler generated dependencies file for pmemcpy_pmemfs.
# This may be replaced when dependencies are built.
