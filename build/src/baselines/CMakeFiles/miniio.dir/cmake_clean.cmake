file(REMOVE_RECURSE
  "CMakeFiles/miniio.dir/adios.cpp.o"
  "CMakeFiles/miniio.dir/adios.cpp.o.d"
  "CMakeFiles/miniio.dir/adios1_facade.cpp.o"
  "CMakeFiles/miniio.dir/adios1_facade.cpp.o.d"
  "CMakeFiles/miniio.dir/contiguous.cpp.o"
  "CMakeFiles/miniio.dir/contiguous.cpp.o.d"
  "CMakeFiles/miniio.dir/footer.cpp.o"
  "CMakeFiles/miniio.dir/footer.cpp.o.d"
  "CMakeFiles/miniio.dir/hdf5_facade.cpp.o"
  "CMakeFiles/miniio.dir/hdf5_facade.cpp.o.d"
  "libminiio.a"
  "libminiio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/miniio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
