file(REMOVE_RECURSE
  "libminiio.a"
)
