# Empty dependencies file for miniio.
# This may be replaced when dependencies are built.
