file(REMOVE_RECURSE
  "libpmemcpy_core.a"
)
