# Empty compiler generated dependencies file for pmemcpy_core.
# This may be replaced when dependencies are built.
