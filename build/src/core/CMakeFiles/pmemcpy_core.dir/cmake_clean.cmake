file(REMOVE_RECURSE
  "CMakeFiles/pmemcpy_core.dir/backend.cpp.o"
  "CMakeFiles/pmemcpy_core.dir/backend.cpp.o.d"
  "CMakeFiles/pmemcpy_core.dir/capi.cpp.o"
  "CMakeFiles/pmemcpy_core.dir/capi.cpp.o.d"
  "CMakeFiles/pmemcpy_core.dir/hyperslab.cpp.o"
  "CMakeFiles/pmemcpy_core.dir/hyperslab.cpp.o.d"
  "CMakeFiles/pmemcpy_core.dir/node.cpp.o"
  "CMakeFiles/pmemcpy_core.dir/node.cpp.o.d"
  "CMakeFiles/pmemcpy_core.dir/pmemcpy.cpp.o"
  "CMakeFiles/pmemcpy_core.dir/pmemcpy.cpp.o.d"
  "libpmemcpy_core.a"
  "libpmemcpy_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmemcpy_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
