# Empty compiler generated dependencies file for pmemcpy_workload.
# This may be replaced when dependencies are built.
