file(REMOVE_RECURSE
  "libpmemcpy_workload.a"
)
