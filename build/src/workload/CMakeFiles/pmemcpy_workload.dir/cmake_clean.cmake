file(REMOVE_RECURSE
  "CMakeFiles/pmemcpy_workload.dir/domain3d.cpp.o"
  "CMakeFiles/pmemcpy_workload.dir/domain3d.cpp.o.d"
  "libpmemcpy_workload.a"
  "libpmemcpy_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmemcpy_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
