# Empty dependencies file for pmemcpy_par.
# This may be replaced when dependencies are built.
