file(REMOVE_RECURSE
  "CMakeFiles/pmemcpy_par.dir/comm.cpp.o"
  "CMakeFiles/pmemcpy_par.dir/comm.cpp.o.d"
  "libpmemcpy_par.a"
  "libpmemcpy_par.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmemcpy_par.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
