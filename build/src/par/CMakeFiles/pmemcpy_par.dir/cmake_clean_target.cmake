file(REMOVE_RECURSE
  "libpmemcpy_par.a"
)
