file(REMOVE_RECURSE
  "libpmemcpy_pmemdev.a"
)
