file(REMOVE_RECURSE
  "CMakeFiles/pmemcpy_pmemdev.dir/device.cpp.o"
  "CMakeFiles/pmemcpy_pmemdev.dir/device.cpp.o.d"
  "libpmemcpy_pmemdev.a"
  "libpmemcpy_pmemdev.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmemcpy_pmemdev.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
