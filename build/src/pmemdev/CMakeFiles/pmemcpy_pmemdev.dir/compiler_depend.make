# Empty compiler generated dependencies file for pmemcpy_pmemdev.
# This may be replaced when dependencies are built.
