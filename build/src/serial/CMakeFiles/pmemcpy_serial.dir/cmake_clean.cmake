file(REMOVE_RECURSE
  "CMakeFiles/pmemcpy_serial.dir/bp4.cpp.o"
  "CMakeFiles/pmemcpy_serial.dir/bp4.cpp.o.d"
  "CMakeFiles/pmemcpy_serial.dir/capnp.cpp.o"
  "CMakeFiles/pmemcpy_serial.dir/capnp.cpp.o.d"
  "CMakeFiles/pmemcpy_serial.dir/filter.cpp.o"
  "CMakeFiles/pmemcpy_serial.dir/filter.cpp.o.d"
  "libpmemcpy_serial.a"
  "libpmemcpy_serial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmemcpy_serial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
