# Empty compiler generated dependencies file for pmemcpy_serial.
# This may be replaced when dependencies are built.
