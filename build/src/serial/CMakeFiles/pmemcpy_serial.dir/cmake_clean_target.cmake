file(REMOVE_RECURSE
  "libpmemcpy_serial.a"
)
