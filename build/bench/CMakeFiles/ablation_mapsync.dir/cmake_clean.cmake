file(REMOVE_RECURSE
  "CMakeFiles/ablation_mapsync.dir/ablation_mapsync.cpp.o"
  "CMakeFiles/ablation_mapsync.dir/ablation_mapsync.cpp.o.d"
  "ablation_mapsync"
  "ablation_mapsync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mapsync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
