# Empty dependencies file for ablation_mapsync.
# This may be replaced when dependencies are built.
