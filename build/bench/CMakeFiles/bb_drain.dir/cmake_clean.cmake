file(REMOVE_RECURSE
  "CMakeFiles/bb_drain.dir/bb_drain.cpp.o"
  "CMakeFiles/bb_drain.dir/bb_drain.cpp.o.d"
  "bb_drain"
  "bb_drain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bb_drain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
