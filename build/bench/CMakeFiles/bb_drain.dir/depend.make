# Empty dependencies file for bb_drain.
# This may be replaced when dependencies are built.
