file(REMOVE_RECURSE
  "CMakeFiles/micro_pmemfs.dir/micro_pmemfs.cpp.o"
  "CMakeFiles/micro_pmemfs.dir/micro_pmemfs.cpp.o.d"
  "micro_pmemfs"
  "micro_pmemfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_pmemfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
