# Empty compiler generated dependencies file for micro_pmemfs.
# This may be replaced when dependencies are built.
