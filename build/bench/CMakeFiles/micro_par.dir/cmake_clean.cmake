file(REMOVE_RECURSE
  "CMakeFiles/micro_par.dir/micro_par.cpp.o"
  "CMakeFiles/micro_par.dir/micro_par.cpp.o.d"
  "micro_par"
  "micro_par.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_par.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
