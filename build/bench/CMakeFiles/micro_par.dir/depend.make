# Empty dependencies file for micro_par.
# This may be replaced when dependencies are built.
