file(REMOVE_RECURSE
  "CMakeFiles/ablation_nbuckets.dir/ablation_nbuckets.cpp.o"
  "CMakeFiles/ablation_nbuckets.dir/ablation_nbuckets.cpp.o.d"
  "ablation_nbuckets"
  "ablation_nbuckets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_nbuckets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
