# Empty compiler generated dependencies file for ablation_nbuckets.
# This may be replaced when dependencies are built.
