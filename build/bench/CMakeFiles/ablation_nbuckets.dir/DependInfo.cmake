
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_nbuckets.cpp" "bench/CMakeFiles/ablation_nbuckets.dir/ablation_nbuckets.cpp.o" "gcc" "bench/CMakeFiles/ablation_nbuckets.dir/ablation_nbuckets.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pmemcpy_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/miniio.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/pmemcpy_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/pmemobj/CMakeFiles/pmemcpy_pmemobj.dir/DependInfo.cmake"
  "/root/repo/build/src/serial/CMakeFiles/pmemcpy_serial.dir/DependInfo.cmake"
  "/root/repo/build/src/pmemfs/CMakeFiles/pmemcpy_pmemfs.dir/DependInfo.cmake"
  "/root/repo/build/src/pmemdev/CMakeFiles/pmemcpy_pmemdev.dir/DependInfo.cmake"
  "/root/repo/build/src/par/CMakeFiles/pmemcpy_par.dir/DependInfo.cmake"
  "/root/repo/build/src/simtime/CMakeFiles/pmemcpy_simtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
