file(REMOVE_RECURSE
  "CMakeFiles/micro_pmemobj.dir/micro_pmemobj.cpp.o"
  "CMakeFiles/micro_pmemobj.dir/micro_pmemobj.cpp.o.d"
  "micro_pmemobj"
  "micro_pmemobj.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_pmemobj.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
