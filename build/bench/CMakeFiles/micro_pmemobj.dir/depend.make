# Empty dependencies file for micro_pmemobj.
# This may be replaced when dependencies are built.
