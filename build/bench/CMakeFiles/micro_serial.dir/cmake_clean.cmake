file(REMOVE_RECURSE
  "CMakeFiles/micro_serial.dir/micro_serial.cpp.o"
  "CMakeFiles/micro_serial.dir/micro_serial.cpp.o.d"
  "micro_serial"
  "micro_serial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_serial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
