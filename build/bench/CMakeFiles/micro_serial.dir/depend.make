# Empty dependencies file for micro_serial.
# This may be replaced when dependencies are built.
