file(REMOVE_RECURSE
  "CMakeFiles/fig7_read.dir/fig7_read.cpp.o"
  "CMakeFiles/fig7_read.dir/fig7_read.cpp.o.d"
  "fig7_read"
  "fig7_read.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_read.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
