# Empty dependencies file for fig7_read.
# This may be replaced when dependencies are built.
