file(REMOVE_RECURSE
  "CMakeFiles/api_complexity.dir/api_complexity.cpp.o"
  "CMakeFiles/api_complexity.dir/api_complexity.cpp.o.d"
  "api_complexity"
  "api_complexity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/api_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
