# Empty compiler generated dependencies file for api_complexity.
# This may be replaced when dependencies are built.
