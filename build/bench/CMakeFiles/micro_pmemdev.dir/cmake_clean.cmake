file(REMOVE_RECURSE
  "CMakeFiles/micro_pmemdev.dir/micro_pmemdev.cpp.o"
  "CMakeFiles/micro_pmemdev.dir/micro_pmemdev.cpp.o.d"
  "micro_pmemdev"
  "micro_pmemdev.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_pmemdev.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
