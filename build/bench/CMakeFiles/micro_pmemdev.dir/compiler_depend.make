# Empty compiler generated dependencies file for micro_pmemdev.
# This may be replaced when dependencies are built.
