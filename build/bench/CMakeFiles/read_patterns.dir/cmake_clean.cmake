file(REMOVE_RECURSE
  "CMakeFiles/read_patterns.dir/read_patterns.cpp.o"
  "CMakeFiles/read_patterns.dir/read_patterns.cpp.o.d"
  "read_patterns"
  "read_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/read_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
