# Empty compiler generated dependencies file for read_patterns.
# This may be replaced when dependencies are built.
