# Empty dependencies file for ablation_serializers.
# This may be replaced when dependencies are built.
