file(REMOVE_RECURSE
  "CMakeFiles/ablation_serializers.dir/ablation_serializers.cpp.o"
  "CMakeFiles/ablation_serializers.dir/ablation_serializers.cpp.o.d"
  "ablation_serializers"
  "ablation_serializers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_serializers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
