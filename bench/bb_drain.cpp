// BB-DRAIN: quantifies the paper's burst-buffer story (§3, Figure 1): the
// checkpoint lands in node-local PMEM at PMEM speed; the flush to the
// parallel filesystem happens asynchronously and overlaps with computation.
//
// Three strategies at 24 procs:
//   pmem-only    write the checkpoint to PMEM (what Figures 6/7 measure)
//   sync-pfs     write to PMEM, then block until the PFS flush completes
//   async-drain  write to PMEM, trigger the drain, compute for T seconds,
//                then wait — the visible flush cost is max(0, drain - T)
#include "figures_common.hpp"

#include <pmemcpy/bb/burst_buffer.hpp>

namespace {

using namespace figbench;

struct Times {
  double pmem_write = 0;
  double drain = 0;  // drain duration on the agent timeline
};

Times run_once(PmemNode& node, pmemcpy::pfs::ParallelFileSystem& pfs,
               const wk::Decomposition& dec, int nvars, int nranks) {
  node.device().reset_page_touches();
  Times t;
  auto result = pmemcpy::par::Runtime::run(
      nranks, [&](pmemcpy::par::Comm& comm) {
        const Box& mine =
            dec.rank_boxes[static_cast<std::size_t>(comm.rank())];
        std::vector<double> buf;
        pmemcpy::Config cfg;
        cfg.node = &node;
        pmemcpy::PMEM pmem{cfg};
        pmem.mmap("/bb.pmem", comm);
        for (int v = 0; v < nvars; ++v) {
          wk::fill_box(buf, v, dec.global, mine);
          pmem.alloc<double>(var_name(v), dec.global);
          pmem.store(var_name(v), buf.data(), 3, mine.offset.data(),
                     mine.count.data());
        }
        comm.barrier();
        if (comm.rank() == 0) {
          pmemcpy::bb::BurstBuffer bb(pfs);
          const auto report = bb.drain(pmem, "ckpt");
          t.drain = report.duration();
        }
        pmem.munmap();
      });
  t.pmem_write = result.max_time;
  return t;
}

}  // namespace

int main() {
  Params p = params_from_env();
  constexpr int kProcs = 24;
  const auto dec = wk::decompose(p.elems_per_var(), kProcs);
  const std::size_t bytes = dec.total_elements() * sizeof(double) *
                            static_cast<std::size_t>(p.nvars);
  std::printf("bb_drain: %.3f GiB checkpoint at %d procs\n",
              static_cast<double>(bytes) / (1ull << 30), kProcs);

  auto node = make_node(IoLib::kPmcpyA, bytes);
  pmemcpy::pfs::ParallelFileSystem pfs;
  const Times t = run_once(*node, pfs, dec, p.nvars, kProcs);

  std::printf("\n%-44s %10s\n", "strategy", "visible s");
  std::printf("%-44s %10.4f\n", "pmem-only (checkpoint latency, Fig.6)",
              t.pmem_write);
  std::printf("%-44s %10.4f\n", "sync-pfs flush (no burst buffer)",
              t.pmem_write + t.drain);
  for (const double compute : {0.0, t.drain / 2, t.drain, 2 * t.drain}) {
    const double visible =
        t.pmem_write + compute + std::max(0.0, t.drain - compute);
    std::printf("async-drain + %6.4f s compute overlap %14.4f\n", compute,
                visible);
  }
  std::printf("\ndrain duration (agent timeline): %.4f s — hidden entirely "
              "once the next compute phase is at least that long.\n",
              t.drain);
  std::printf("PFS is the slow tier: flushing costs %.1fx the PMEM "
              "checkpoint itself.\n",
              t.drain / t.pmem_write);
  return 0;
}
