// Microbenchmarks for the serialization layer: archive encode/decode rates
// and record-framing overheads per serializer.
#include <pmemcpy/serial/binary.hpp>
#include <pmemcpy/serial/bp4.hpp>
#include <pmemcpy/serial/capnp.hpp>

#include <benchmark/benchmark.h>

#include <numeric>

namespace {

using namespace pmemcpy::serial;

void BM_BinaryWriteDoubles(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> v(n, 1.5);
  for (auto _ : state) {
    BufferSink sink;
    BinaryWriter w(sink);
    w(v);
    benchmark::DoNotOptimize(sink.bytes().data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(n * 8) *
                          state.iterations());
}
BENCHMARK(BM_BinaryWriteDoubles)->Range(64, 1 << 18);

void BM_BinaryReadDoubles(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> v(n, 1.5);
  BufferSink sink;
  {
    BinaryWriter w(sink);
    w(v);
  }
  for (auto _ : state) {
    BufferSource src(sink.bytes());
    BinaryReader r(src);
    std::vector<double> out;
    r(out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(n * 8) *
                          state.iterations());
}
BENCHMARK(BM_BinaryReadDoubles)->Range(64, 1 << 18);

struct Record {
  std::uint64_t id = 0;
  std::string name;
  std::vector<float> samples;
  template <class Ar>
  void serialize(Ar& ar) {
    ar(id, name, samples);
  }
};

void BM_BinaryStructRoundtrip(benchmark::State& state) {
  std::vector<Record> records(100);
  for (std::size_t i = 0; i < records.size(); ++i) {
    records[i].id = i;
    records[i].name = "record-" + std::to_string(i);
    records[i].samples.assign(32, 0.5f);
  }
  for (auto _ : state) {
    BufferSink sink;
    BinaryWriter w(sink);
    w(records);
    BufferSource src(sink.bytes());
    BinaryReader r(src);
    std::vector<Record> out;
    r(out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_BinaryStructRoundtrip);

void BM_Bp4HeaderWrite(benchmark::State& state) {
  VarMeta meta;
  meta.dtype = DType::kF64;
  meta.payload_bytes = 1 << 20;
  meta.global = {512, 512, 512};
  meta.offset = {0, 0, 0};
  meta.count = {64, 512, 512};
  for (auto _ : state) {
    BufferSink sink;
    bp4_write_header(sink, meta);
    benchmark::DoNotOptimize(sink.bytes().data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Bp4HeaderWrite);

void BM_CapnpHeaderWrite(benchmark::State& state) {
  VarMeta meta;
  meta.dtype = DType::kF64;
  meta.payload_bytes = 1 << 20;
  meta.global = {512, 512, 512};
  meta.offset = {0, 0, 0};
  meta.count = {64, 512, 512};
  for (auto _ : state) {
    BufferSink sink;
    capnp_write_header(sink, meta);
    benchmark::DoNotOptimize(sink.bytes().data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CapnpHeaderWrite);

void BM_CapnpZeroCopyFieldAccess(benchmark::State& state) {
  VarMeta meta;
  meta.dtype = DType::kF64;
  meta.payload_bytes = 64;
  meta.global = {8};
  meta.offset = {0};
  meta.count = {8};
  BufferSink sink;
  capnp_write_header(sink, meta);
  std::vector<double> payload(8, 2.0);
  sink.write(payload.data(), 64);
  const std::byte* rec = sink.bytes().data();
  for (auto _ : state) {
    benchmark::DoNotOptimize(capnp_payload_bytes(rec));
    benchmark::DoNotOptimize(capnp_payload(rec));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CapnpZeroCopyFieldAccess);

void BM_VarintEncodeDecode(benchmark::State& state) {
  std::vector<std::uint64_t> values(1000);
  std::iota(values.begin(), values.end(), 1ull << 20);
  for (auto _ : state) {
    BufferSink sink;
    BinaryWriter w(sink);
    for (auto v : values) w.write_varint(v);
    BufferSource src(sink.bytes());
    BinaryReader r(src);
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < values.size(); ++i) acc += r.read_varint();
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_VarintEncodeDecode);

}  // namespace

BENCHMARK_MAIN();
