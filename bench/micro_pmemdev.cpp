// Microbenchmarks (wall-clock ns/op of the implementation itself) for the
// emulated device: transfer primitives, persist, DAX charging overhead.
#include <pmemcpy/pmem/device.hpp>

#include <benchmark/benchmark.h>

#include <vector>

namespace {

using pmemcpy::pmem::Device;

void BM_DeviceWrite(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  Device dev(64ull << 20);
  std::vector<std::byte> buf(bytes);
  for (auto _ : state) {
    dev.write(0, buf.data(), bytes);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes) *
                          state.iterations());
}
BENCHMARK(BM_DeviceWrite)->Range(64, 4 << 20);

void BM_DeviceRead(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  Device dev(64ull << 20);
  std::vector<std::byte> buf(bytes);
  dev.write(0, buf.data(), bytes);
  for (auto _ : state) {
    dev.read(0, buf.data(), bytes);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes) *
                          state.iterations());
}
BENCHMARK(BM_DeviceRead)->Range(64, 4 << 20);

void BM_DevicePersist(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  Device dev(64ull << 20);
  for (auto _ : state) {
    dev.persist(0, bytes);
  }
}
BENCHMARK(BM_DevicePersist)->Range(64, 1 << 20);

void BM_DaxWriteCharge(benchmark::State& state) {
  Device dev(64ull << 20);
  for (auto _ : state) {
    dev.charge_dax_write(0, 4096, false);
  }
}
BENCHMARK(BM_DaxWriteCharge);

void BM_CrashShadowWriteOverhead(benchmark::State& state) {
  Device dev(64ull << 20, /*crash_shadow=*/true);
  std::vector<std::byte> buf(4096);
  std::size_t off = 0;
  for (auto _ : state) {
    dev.write(off, buf.data(), buf.size());
    off = (off + 4096) % (32ull << 20);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(buf.size()) *
                          state.iterations());
}
BENCHMARK(BM_CrashShadowWriteOverhead);

}  // namespace

BENCHMARK_MAIN();
