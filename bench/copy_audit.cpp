// Deterministic data-path copy audit (DESIGN.md §12/§13).
//
// Runs a fixed put workload through each library's write path and a fixed
// get workload through each library's read path, with tracing armed, and
// reports per phase where the serialized bytes travelled:
//   * writes — a DRAM staging buffer (copy.staged_bytes, the ADIOS-style
//     extra pass) or the reserved PMEM span directly (copy.direct_bytes,
//     reserve-then-serialize);
//   * reads — a DRAM bounce before decode (copy.read_staged_bytes) or an
//     in-place decode of the stored blob (copy.read_direct_bytes), with the
//     tree engine's fragmented-file fallback tracked separately as
//     copy.read_bounce_bytes so the gate can exempt it explicitly.
// The asymmetry is the point of the comparison, so the gate is asymmetric
// too: pMEMCPY's direct phases must report ZERO staged bytes in their
// direction, while the staging ablation and the miniio baselines must
// report staged bytes — otherwise the audit instrumentation itself has
// rotted.  The cached read phase must additionally show real cache hits.
// Like flush_audit, every count is exact and reproducible.
//
// Usage: copy_audit [--json PATH] [--baseline PATH]
//   --json      write the per-phase counters as JSON (one object per line)
//   --baseline  compare against a previously written JSON file and fail
//               (exit 1) if any phase's copy.staged_bytes, copy.staged_puts
//               or copy.read_staged_bytes grew — ci.sh uses this as a copy
//               regression gate on top of the built-in zero-staged gates.
#include <miniio/miniio.hpp>
#include <pmemcpy/pmemcpy.hpp>
#include <pmemcpy/trace/trace.hpp>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

namespace {

namespace trace = pmemcpy::trace;
using pmemcpy::Box;
using pmemcpy::Config;
using pmemcpy::Dimensions;
using pmemcpy::PMEM;
using pmemcpy::PmemNode;

struct Phase {
  std::string name;
  std::uint64_t staged_bytes = 0;
  std::uint64_t direct_bytes = 0;
  std::uint64_t staged_puts = 0;
  std::uint64_t read_staged_bytes = 0;
  std::uint64_t read_direct_bytes = 0;
  std::uint64_t read_bounce_bytes = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_hit_bytes = 0;
  bool is_read = false;       ///< gate the read counters, not the write ones
  bool expect_staged = false;  ///< baseline/ablation: staging must be seen
  bool expect_cached = false;  ///< cached phase: hits must be seen
};

std::vector<Phase> phases;

PmemNode::Options node_opts() {
  PmemNode::Options o;
  o.capacity = 96ull << 20;
  return o;
}

/// Runs @p fn with the copy counters zeroed and records their deltas.
template <typename Fn>
void audit(const std::string& name, bool is_read, bool expect_staged,
           bool expect_cached, Fn&& fn) {
  trace::reset();
  fn();
  Phase p;
  p.name = name;
  p.staged_bytes = trace::counter(trace::Counter::kCopyStagedBytes);
  p.direct_bytes = trace::counter(trace::Counter::kCopyDirectBytes);
  p.staged_puts = trace::counter(trace::Counter::kCopyStagedPuts);
  p.read_staged_bytes = trace::counter(trace::Counter::kCopyReadStagedBytes);
  p.read_direct_bytes = trace::counter(trace::Counter::kCopyReadDirectBytes);
  p.read_bounce_bytes = trace::counter(trace::Counter::kCopyReadBounceBytes);
  p.cache_hits = trace::counter(trace::Counter::kReadCacheHits);
  p.cache_hit_bytes = trace::counter(trace::Counter::kReadCacheHitBytes);
  p.is_read = is_read;
  p.expect_staged = expect_staged;
  p.expect_cached = expect_cached;
  phases.push_back(std::move(p));
}

template <typename Fn>
void audit_write(const std::string& name, bool expect_staged, Fn&& fn) {
  audit(name, false, expect_staged, false, std::forward<Fn>(fn));
}

template <typename Fn>
void audit_read(const std::string& name, bool expect_staged,
                bool expect_cached, Fn&& fn) {
  audit(name, true, expect_staged, expect_cached, std::forward<Fn>(fn));
}

/// The common put mix: scalar puts, a group commit, and an array piece.
void pmemcpy_puts(PMEM& pmem) {
  for (int i = 0; i < 16; ++i) {
    pmem.store("k" + std::to_string(i), std::int64_t{i});
  }
  {
    auto b = pmem.batch();
    for (int i = 0; i < 16; ++i) {
      pmem.store("b" + std::to_string(i), std::int64_t{100 + i});
    }
    b.commit();
  }
  std::vector<double> v(4096);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = double(i) * 0.25;
  const std::size_t dims = v.size(), off = 0;
  pmem.alloc<double>("arr", 1, &dims);
  pmem.store("arr", v.data(), 1, &off, &dims);
}

/// The matching get mix: every scalar back, then the whole array piece.
void pmemcpy_gets(PMEM& pmem) {
  for (int i = 0; i < 16; ++i) {
    if (pmem.load<std::int64_t>("k" + std::to_string(i)) != i) {
      std::fprintf(stderr, "copy_audit: scalar readback mismatch\n");
      std::exit(2);
    }
  }
  std::vector<double> v(4096);
  const std::size_t dims = v.size(), off = 0;
  pmem.load("arr", v.data(), 1, &off, &dims);
}

void run_pmemcpy(pmemcpy::Layout layout, bool force_staging) {
  PmemNode node(node_opts());
  Config cfg;
  cfg.node = &node;
  cfg.layout = layout;
  cfg.serializer = pmemcpy::serial::SerializerId::kBinary;
  cfg.force_dram_staging = force_staging;
  PMEM pmem{cfg};
  pmem.mmap("/audit");
  pmemcpy_puts(pmem);
  pmem.munmap();
}

/// Populates, zeroes the counters, then audits only the reads.  With a
/// cache configured the get mix runs twice so the second pass is served
/// from DRAM hits.
void run_pmemcpy_read(pmemcpy::Layout layout, bool force_staging,
                      std::size_t cache_bytes) {
  PmemNode node(node_opts());
  Config cfg;
  cfg.node = &node;
  cfg.layout = layout;
  cfg.serializer = pmemcpy::serial::SerializerId::kBinary;
  cfg.force_dram_staging = force_staging;
  cfg.read_cache_bytes = cache_bytes;
  PMEM pmem{cfg};
  pmem.mmap("/audit");
  pmemcpy_puts(pmem);
  trace::reset();
  pmemcpy_gets(pmem);
  if (cache_bytes > 0) pmemcpy_gets(pmem);
  pmem.munmap();
}

void run_miniio(miniio::Library lib) {
  PmemNode node(node_opts());
  pmemcpy::par::Runtime::run(1, [&](pmemcpy::par::Comm& comm) {
    auto w = miniio::open_writer(lib, node, "/baseline.dat", comm);
    const Dimensions global{32768};
    const Box local(Dimensions{0}, global);
    std::vector<double> data(32768);
    for (std::size_t i = 0; i < data.size(); ++i) data[i] = double(i);
    w->write("var", data.data(), local, global);
    w->close();
  });
}

void run_miniio_read(miniio::Library lib) {
  PmemNode node(node_opts());
  pmemcpy::par::Runtime::run(1, [&](pmemcpy::par::Comm& comm) {
    const Dimensions global{32768};
    const Box local(Dimensions{0}, global);
    {
      auto w = miniio::open_writer(lib, node, "/baseline.dat", comm);
      std::vector<double> data(32768);
      for (std::size_t i = 0; i < data.size(); ++i) data[i] = double(i);
      w->write("var", data.data(), local, global);
      w->close();
    }
    trace::reset();
    auto r = miniio::open_reader(lib, node, "/baseline.dat", comm);
    std::vector<double> data(32768);
    r->read("var", data.data(), local);
    r->close();
  });
}

bool write_json(const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "copy_audit: cannot write %s\n", path);
    return false;
  }
  std::fprintf(f, "[\n");
  for (std::size_t i = 0; i < phases.size(); ++i) {
    // Serialise through the shared trace counter schema (stats exporter,
    // flush_audit and this tool all emit the same field names).
    std::uint64_t row[static_cast<int>(trace::Counter::kNumCounters)] = {};
    row[static_cast<int>(trace::Counter::kCopyStagedBytes)] =
        phases[i].staged_bytes;
    row[static_cast<int>(trace::Counter::kCopyDirectBytes)] =
        phases[i].direct_bytes;
    row[static_cast<int>(trace::Counter::kCopyStagedPuts)] =
        phases[i].staged_puts;
    row[static_cast<int>(trace::Counter::kCopyReadStagedBytes)] =
        phases[i].read_staged_bytes;
    row[static_cast<int>(trace::Counter::kCopyReadDirectBytes)] =
        phases[i].read_direct_bytes;
    row[static_cast<int>(trace::Counter::kCopyReadBounceBytes)] =
        phases[i].read_bounce_bytes;
    row[static_cast<int>(trace::Counter::kReadCacheHits)] =
        phases[i].cache_hits;
    row[static_cast<int>(trace::Counter::kReadCacheHitBytes)] =
        phases[i].cache_hit_bytes;
    std::fprintf(f, "{\"phase\": \"%s\", %s}%s\n", phases[i].name.c_str(),
                 trace::schema_fields(row).c_str(),
                 i + 1 < phases.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  return true;
}

/// Pulls `"field": N` out of a JSON line; absent (zero-suppressed) = 0.
std::uint64_t field_of(const char* line, const char* field) {
  const std::string pat = std::string("\"") + field + "\": ";
  const char* at = std::strstr(line, pat.c_str());
  if (at == nullptr) return 0;
  unsigned long long v = 0;
  std::sscanf(at + pat.size(), "%llu", &v);
  return v;
}

struct BaselineRow {
  std::uint64_t staged_bytes = 0;
  std::uint64_t staged_puts = 0;
  std::uint64_t read_staged_bytes = 0;
};

/// Parses the one-object-per-line JSON write_json() emits.  Phases present
/// only on one side are skipped (new phases must not fail old baselines).
bool check_baseline(const char* path) {
  std::FILE* f = std::fopen(path, "r");
  if (f == nullptr) {
    std::fprintf(stderr, "copy_audit: cannot read baseline %s\n", path);
    return false;
  }
  std::map<std::string, BaselineRow> base;
  char line[1024];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    char name[128];
    if (std::sscanf(line, "{\"phase\": \"%127[^\"]\"", name) == 1) {
      base[name] = {field_of(line, "copy_staged_bytes"),
                    field_of(line, "copy_staged_puts"),
                    field_of(line, "copy_read_staged_bytes")};
    }
  }
  std::fclose(f);

  const auto fail_grew = [](const Phase& p, const char* field,
                            std::uint64_t now, std::uint64_t was) {
    std::fprintf(stderr, "copy_audit: REGRESSION %s %s %llu > baseline %llu\n",
                 p.name.c_str(), field, static_cast<unsigned long long>(now),
                 static_cast<unsigned long long>(was));
  };
  bool ok = true;
  for (const auto& p : phases) {
    const auto it = base.find(p.name);
    if (it == base.end()) continue;
    if (p.staged_bytes > it->second.staged_bytes) {
      fail_grew(p, "copy_staged_bytes", p.staged_bytes,
                it->second.staged_bytes);
      ok = false;
    }
    if (p.staged_puts > it->second.staged_puts) {
      fail_grew(p, "copy_staged_puts", p.staged_puts, it->second.staged_puts);
      ok = false;
    }
    if (p.read_staged_bytes > it->second.read_staged_bytes) {
      fail_grew(p, "copy_read_staged_bytes", p.read_staged_bytes,
                it->second.read_staged_bytes);
      ok = false;
    }
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  const char* baseline_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: copy_audit [--json PATH] [--baseline PATH]\n");
      return 2;
    }
  }

  trace::set_enabled(true);

  // pMEMCPY direct phases: every serialized byte must land in the reserved
  // PMEM span; a single DRAM-staged byte fails the audit.
  audit_write("pmemcpy-put", false,
              [] { run_pmemcpy(pmemcpy::Layout::kHashTable, false); });
  audit_write("pmemcpy-tree", false,
              [] { run_pmemcpy(pmemcpy::Layout::kHierarchical, false); });
  // The staging ablation (Config::force_dram_staging) and the miniio
  // baselines must be *seen* staging — that asymmetry is the paper's
  // comparison, and a zero here means the instrumentation is broken.
  audit_write("pmemcpy-staged", true,
              [] { run_pmemcpy(pmemcpy::Layout::kHashTable, true); });
  audit_write("adios", true, [] { run_miniio(miniio::Library::kAdios); });
  audit_write("netcdf4", true, [] { run_miniio(miniio::Library::kNetcdf4); });
  audit_write("pnetcdf", true, [] { run_miniio(miniio::Library::kPnetcdf); });

  // Read direction (DESIGN.md §13): pMEMCPY decodes the stored blob in
  // place — zero read-staged bytes on both layouts, with the tree engine's
  // fragmented-file fallback exempted under its own bounce counter.  The
  // cached phase must show genuine DRAM hits on top; the staged ablation
  // and the baselines must be seen bouncing through DRAM.
  audit_read("pmemcpy-read", false, false, [] {
    run_pmemcpy_read(pmemcpy::Layout::kHashTable, false, 0);
  });
  audit_read("pmemcpy-read-tree", false, false, [] {
    run_pmemcpy_read(pmemcpy::Layout::kHierarchical, false, 0);
  });
  audit_read("pmemcpy-read-cached", false, true, [] {
    run_pmemcpy_read(pmemcpy::Layout::kHashTable, false, 4u << 20);
  });
  audit_read("pmemcpy-read-staged", true, false, [] {
    run_pmemcpy_read(pmemcpy::Layout::kHashTable, true, 0);
  });
  audit_read("adios-read", true, false,
             [] { run_miniio_read(miniio::Library::kAdios); });
  audit_read("netcdf4-read", true, false,
             [] { run_miniio_read(miniio::Library::kNetcdf4); });
  audit_read("pnetcdf-read", true, false,
             [] { run_miniio_read(miniio::Library::kPnetcdf); });

  std::printf("%-20s %14s %14s %12s %14s %14s %14s %10s\n", "phase",
              "staged_bytes", "direct_bytes", "staged_puts", "rd_staged",
              "rd_direct", "rd_bounce", "hits");
  for (const auto& p : phases) {
    std::printf("%-20s %14llu %14llu %12llu %14llu %14llu %14llu %10llu\n",
                p.name.c_str(), static_cast<unsigned long long>(p.staged_bytes),
                static_cast<unsigned long long>(p.direct_bytes),
                static_cast<unsigned long long>(p.staged_puts),
                static_cast<unsigned long long>(p.read_staged_bytes),
                static_cast<unsigned long long>(p.read_direct_bytes),
                static_cast<unsigned long long>(p.read_bounce_bytes),
                static_cast<unsigned long long>(p.cache_hits));
  }

  bool ok = true;
  for (const auto& p : phases) {
    if (!p.is_read) {
      if (!p.expect_staged && (p.staged_bytes != 0 || p.staged_puts != 0)) {
        std::fprintf(stderr,
                     "copy_audit: FAIL %s staged %llu bytes (%llu puts) on "
                     "the direct path\n",
                     p.name.c_str(),
                     static_cast<unsigned long long>(p.staged_bytes),
                     static_cast<unsigned long long>(p.staged_puts));
        ok = false;
      }
      if (!p.expect_staged && p.direct_bytes == 0) {
        std::fprintf(stderr, "copy_audit: FAIL %s reported no direct bytes\n",
                     p.name.c_str());
        ok = false;
      }
      if (p.expect_staged && p.staged_bytes == 0) {
        std::fprintf(stderr,
                     "copy_audit: FAIL %s reported no staged bytes — staging "
                     "instrumentation is broken\n",
                     p.name.c_str());
        ok = false;
      }
      continue;
    }
    if (!p.expect_staged && p.read_staged_bytes != 0) {
      std::fprintf(stderr,
                   "copy_audit: FAIL %s bounced %llu bytes through DRAM on "
                   "the direct read path\n",
                   p.name.c_str(),
                   static_cast<unsigned long long>(p.read_staged_bytes));
      ok = false;
    }
    if (!p.expect_staged &&
        p.read_direct_bytes == 0 && p.read_bounce_bytes == 0) {
      std::fprintf(stderr,
                   "copy_audit: FAIL %s reported no direct read bytes\n",
                   p.name.c_str());
      ok = false;
    }
    if (p.expect_staged && p.read_staged_bytes == 0) {
      std::fprintf(stderr,
                   "copy_audit: FAIL %s reported no read-staged bytes — "
                   "staging instrumentation is broken\n",
                   p.name.c_str());
      ok = false;
    }
    if (p.expect_cached && p.cache_hits == 0) {
      std::fprintf(stderr,
                   "copy_audit: FAIL %s reported no read-cache hits\n",
                   p.name.c_str());
      ok = false;
    }
  }

  if (json_path != nullptr && !write_json(json_path)) ok = false;
  if (baseline_path != nullptr && !check_baseline(baseline_path)) ok = false;
  return ok ? 0 : 1;
}
