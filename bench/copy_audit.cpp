// Deterministic data-path copy audit (DESIGN.md §12).
//
// Runs a fixed put workload through each library's write path with tracing
// armed and reports, per phase, where the serialized bytes landed: a DRAM
// staging buffer (copy.staged_bytes — the ADIOS-style extra pass) or the
// reserved PMEM span directly (copy.direct_bytes — reserve-then-serialize).
// The asymmetry is the point of the comparison, so the gate is asymmetric
// too: pMEMCPY's direct phases must report ZERO staged bytes, while the
// staging ablation and the miniio baselines must report staged bytes —
// otherwise the audit instrumentation itself has rotted.  Like flush_audit,
// every count is exact and reproducible.
//
// Usage: copy_audit [--json PATH] [--baseline PATH]
//   --json      write the per-phase counters as JSON (one object per line)
//   --baseline  compare against a previously written JSON file and fail
//               (exit 1) if any phase's copy.staged_bytes or
//               copy.staged_puts grew — ci.sh uses this as a copy
//               regression gate on top of the built-in zero-staged gate.
#include <miniio/miniio.hpp>
#include <pmemcpy/pmemcpy.hpp>
#include <pmemcpy/trace/trace.hpp>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

namespace {

namespace trace = pmemcpy::trace;
using pmemcpy::Box;
using pmemcpy::Config;
using pmemcpy::Dimensions;
using pmemcpy::PMEM;
using pmemcpy::PmemNode;

struct Phase {
  std::string name;
  std::uint64_t staged_bytes = 0;
  std::uint64_t direct_bytes = 0;
  std::uint64_t staged_puts = 0;
  bool expect_staged = false;
};

std::vector<Phase> phases;

PmemNode::Options node_opts() {
  PmemNode::Options o;
  o.capacity = 96ull << 20;
  return o;
}

/// Runs @p fn with the copy counters zeroed and records their deltas.
template <typename Fn>
void audit(const std::string& name, bool expect_staged, Fn&& fn) {
  trace::reset();
  fn();
  Phase p;
  p.name = name;
  p.staged_bytes = trace::counter(trace::Counter::kCopyStagedBytes);
  p.direct_bytes = trace::counter(trace::Counter::kCopyDirectBytes);
  p.staged_puts = trace::counter(trace::Counter::kCopyStagedPuts);
  p.expect_staged = expect_staged;
  phases.push_back(std::move(p));
}

/// The common put mix: scalar puts, a group commit, and an array piece.
void pmemcpy_puts(PMEM& pmem) {
  for (int i = 0; i < 16; ++i) {
    pmem.store("k" + std::to_string(i), std::int64_t{i});
  }
  {
    auto b = pmem.batch();
    for (int i = 0; i < 16; ++i) {
      pmem.store("b" + std::to_string(i), std::int64_t{100 + i});
    }
    b.commit();
  }
  std::vector<double> v(4096);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = double(i) * 0.25;
  const std::size_t dims = v.size(), off = 0;
  pmem.alloc<double>("arr", 1, &dims);
  pmem.store("arr", v.data(), 1, &off, &dims);
}

void run_pmemcpy(pmemcpy::Layout layout, bool force_staging) {
  PmemNode node(node_opts());
  Config cfg;
  cfg.node = &node;
  cfg.layout = layout;
  cfg.serializer = pmemcpy::serial::SerializerId::kBinary;
  cfg.force_dram_staging = force_staging;
  PMEM pmem{cfg};
  pmem.mmap("/audit");
  pmemcpy_puts(pmem);
  pmem.munmap();
}

void run_miniio(miniio::Library lib) {
  PmemNode node(node_opts());
  pmemcpy::par::Runtime::run(1, [&](pmemcpy::par::Comm& comm) {
    auto w = miniio::open_writer(lib, node, "/baseline.dat", comm);
    const Dimensions global{32768};
    const Box local(Dimensions{0}, global);
    std::vector<double> data(32768);
    for (std::size_t i = 0; i < data.size(); ++i) data[i] = double(i);
    w->write("var", data.data(), local, global);
    w->close();
  });
}

bool write_json(const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "copy_audit: cannot write %s\n", path);
    return false;
  }
  std::fprintf(f, "[\n");
  for (std::size_t i = 0; i < phases.size(); ++i) {
    // Serialise through the shared trace counter schema (stats exporter,
    // flush_audit and this tool all emit the same field names).
    std::uint64_t row[static_cast<int>(trace::Counter::kNumCounters)] = {};
    row[static_cast<int>(trace::Counter::kCopyStagedBytes)] =
        phases[i].staged_bytes;
    row[static_cast<int>(trace::Counter::kCopyDirectBytes)] =
        phases[i].direct_bytes;
    row[static_cast<int>(trace::Counter::kCopyStagedPuts)] =
        phases[i].staged_puts;
    std::fprintf(f, "{\"phase\": \"%s\", %s}%s\n", phases[i].name.c_str(),
                 trace::schema_fields(row).c_str(),
                 i + 1 < phases.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  return true;
}

/// Pulls `"field": N` out of a JSON line; absent (zero-suppressed) = 0.
std::uint64_t field_of(const char* line, const char* field) {
  const std::string pat = std::string("\"") + field + "\": ";
  const char* at = std::strstr(line, pat.c_str());
  if (at == nullptr) return 0;
  unsigned long long v = 0;
  std::sscanf(at + pat.size(), "%llu", &v);
  return v;
}

struct BaselineRow {
  std::uint64_t staged_bytes = 0;
  std::uint64_t staged_puts = 0;
};

/// Parses the one-object-per-line JSON write_json() emits.  Phases present
/// only on one side are skipped (new phases must not fail old baselines).
bool check_baseline(const char* path) {
  std::FILE* f = std::fopen(path, "r");
  if (f == nullptr) {
    std::fprintf(stderr, "copy_audit: cannot read baseline %s\n", path);
    return false;
  }
  std::map<std::string, BaselineRow> base;
  char line[1024];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    char name[128];
    if (std::sscanf(line, "{\"phase\": \"%127[^\"]\"", name) == 1) {
      base[name] = {field_of(line, "copy_staged_bytes"),
                    field_of(line, "copy_staged_puts")};
    }
  }
  std::fclose(f);

  bool ok = true;
  for (const auto& p : phases) {
    const auto it = base.find(p.name);
    if (it == base.end()) continue;
    if (p.staged_bytes > it->second.staged_bytes) {
      std::fprintf(stderr,
                   "copy_audit: REGRESSION %s copy_staged_bytes %llu > "
                   "baseline %llu\n",
                   p.name.c_str(),
                   static_cast<unsigned long long>(p.staged_bytes),
                   static_cast<unsigned long long>(it->second.staged_bytes));
      ok = false;
    }
    if (p.staged_puts > it->second.staged_puts) {
      std::fprintf(stderr,
                   "copy_audit: REGRESSION %s copy_staged_puts %llu > "
                   "baseline %llu\n",
                   p.name.c_str(),
                   static_cast<unsigned long long>(p.staged_puts),
                   static_cast<unsigned long long>(it->second.staged_puts));
      ok = false;
    }
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  const char* baseline_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: copy_audit [--json PATH] [--baseline PATH]\n");
      return 2;
    }
  }

  trace::set_enabled(true);

  // pMEMCPY direct phases: every serialized byte must land in the reserved
  // PMEM span; a single DRAM-staged byte fails the audit.
  audit("pmemcpy-put", false,
        [] { run_pmemcpy(pmemcpy::Layout::kHashTable, false); });
  audit("pmemcpy-tree", false,
        [] { run_pmemcpy(pmemcpy::Layout::kHierarchical, false); });
  // The staging ablation (Config::force_dram_staging) and the miniio
  // baselines must be *seen* staging — that asymmetry is the paper's
  // comparison, and a zero here means the instrumentation is broken.
  audit("pmemcpy-staged", true,
        [] { run_pmemcpy(pmemcpy::Layout::kHashTable, true); });
  audit("adios", true, [] { run_miniio(miniio::Library::kAdios); });
  audit("netcdf4", true, [] { run_miniio(miniio::Library::kNetcdf4); });
  audit("pnetcdf", true, [] { run_miniio(miniio::Library::kPnetcdf); });

  std::printf("%-16s %14s %14s %12s\n", "phase", "staged_bytes",
              "direct_bytes", "staged_puts");
  for (const auto& p : phases) {
    std::printf("%-16s %14llu %14llu %12llu\n", p.name.c_str(),
                static_cast<unsigned long long>(p.staged_bytes),
                static_cast<unsigned long long>(p.direct_bytes),
                static_cast<unsigned long long>(p.staged_puts));
  }

  bool ok = true;
  for (const auto& p : phases) {
    if (!p.expect_staged && (p.staged_bytes != 0 || p.staged_puts != 0)) {
      std::fprintf(stderr,
                   "copy_audit: FAIL %s staged %llu bytes (%llu puts) on "
                   "the direct path\n",
                   p.name.c_str(),
                   static_cast<unsigned long long>(p.staged_bytes),
                   static_cast<unsigned long long>(p.staged_puts));
      ok = false;
    }
    if (!p.expect_staged && p.direct_bytes == 0) {
      std::fprintf(stderr, "copy_audit: FAIL %s reported no direct bytes\n",
                   p.name.c_str());
      ok = false;
    }
    if (p.expect_staged && p.staged_bytes == 0) {
      std::fprintf(stderr,
                   "copy_audit: FAIL %s reported no staged bytes — staging "
                   "instrumentation is broken\n",
                   p.name.c_str());
      ok = false;
    }
  }

  if (json_path != nullptr && !write_json(json_path)) ok = false;
  if (baseline_path != nullptr && !check_baseline(baseline_path)) ok = false;
  return ok ? 0 : 1;
}
