// Figure 7: "Performance of reading a 40GB 3-D domain from PMEM for a
// varying number of processes."  The read workload is symmetric to Figure
// 6's write workload: each process reads back exactly the region it wrote.
// An untimed write populates the store before the timed reads.
//
// Scale with PMEMCPY_BENCH_GB (default 0.25).
#include "figures_common.hpp"

int main() {
  using namespace figbench;
  const Params p = params_from_env();
  std::printf("fig7_read: %.3f GiB total, %d vars, %d reps\n", p.gib, p.nvars,
              p.reps);

  std::map<IoLib, std::vector<double>> series;
  for (const int nranks : p.counts) {
    const auto dec = wk::decompose(p.elems_per_var(), nranks);
    const std::size_t actual =
        dec.total_elements() * sizeof(double) *
        static_cast<std::size_t>(p.nvars);
    for (const IoLib lib : kAllLibs) {
      auto node = make_node(lib, actual);
      // Populate (untimed).
      (void)run_write(lib, *node, dec, p.nvars, nranks);
      double sum = 0;
      for (int rep = 0; rep < p.reps; ++rep) {
        sum += run_read(lib, *node, dec, p.nvars, nranks,
                        p.verify && rep == 0);
      }
      series[lib].push_back(sum / p.reps);
      std::printf("  nprocs=%-3d %-8s %8.3f s\n", nranks, name(lib),
                  series[lib].back());
      std::fflush(stdout);
    }
  }
  print_figure("Figure 7: I/O library vs #processes (READS, seconds)",
               p.counts, series);
  print_claims(p.counts, series, 24);
  return 0;
}
