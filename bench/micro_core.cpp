// Microbenchmarks for the pMEMCPY public API itself (wall-clock of the
// implementation): scalar and array store/load rates per layout.
#include <pmemcpy/pmemcpy.hpp>

#include <benchmark/benchmark.h>

#include <vector>

namespace {

using pmemcpy::Config;
using pmemcpy::Layout;
using pmemcpy::PMEM;
using pmemcpy::PmemNode;

struct Env {
  Env(Layout layout) {
    PmemNode::Options o;
    o.capacity = 512ull << 20;
    o.pool_fraction = layout == Layout::kHashTable ? 0.9 : 0.05;
    node = std::make_unique<PmemNode>(o);
    Config cfg;
    cfg.node = node.get();
    cfg.layout = layout;
    pmem = std::make_unique<PMEM>(cfg);
    pmem->mmap("/bench");
  }
  std::unique_ptr<PmemNode> node;
  std::unique_ptr<PMEM> pmem;
};

void BM_ScalarStore(benchmark::State& state) {
  Env env(static_cast<Layout>(state.range(0)));
  std::uint64_t i = 0;
  for (auto _ : state) {
    env.pmem->store("s" + std::to_string(i++ % 64), 3.25);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ScalarStore)->Arg(0)->Arg(1);  // 0=table, 1=tree

void BM_ScalarLoad(benchmark::State& state) {
  Env env(static_cast<Layout>(state.range(0)));
  env.pmem->store("s", 3.25);
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.pmem->load<double>("s"));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ScalarLoad)->Arg(0)->Arg(1);

void BM_ArrayStore(benchmark::State& state) {
  Env env(Layout::kHashTable);
  const auto elems = static_cast<std::size_t>(state.range(0));
  std::vector<double> data(elems, 1.5);
  const std::size_t dims = elems, off = 0;
  env.pmem->alloc<double>("A", 1, &dims);
  for (auto _ : state) {
    env.pmem->store("A", data.data(), 1, &off, &dims);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(elems * 8) *
                          state.iterations());
}
BENCHMARK(BM_ArrayStore)->Range(1 << 10, 1 << 20);

void BM_ArrayLoadSymmetric(benchmark::State& state) {
  Env env(Layout::kHashTable);
  const auto elems = static_cast<std::size_t>(state.range(0));
  std::vector<double> data(elems, 1.5);
  const std::size_t dims = elems, off = 0;
  env.pmem->alloc<double>("A", 1, &dims);
  env.pmem->store("A", data.data(), 1, &off, &dims);
  for (auto _ : state) {
    env.pmem->load("A", data.data(), 1, &off, &dims);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(elems * 8) *
                          state.iterations());
}
BENCHMARK(BM_ArrayLoadSymmetric)->Range(1 << 10, 1 << 20);

void BM_ArrayLoadCrossPiece(benchmark::State& state) {
  // General path: the wanted box straddles two stored pieces.
  Env env(Layout::kHashTable);
  const std::size_t half = 1 << 16;
  std::vector<double> data(half, 2.5);
  const std::size_t dims = 2 * half;
  const std::size_t off_a = 0, off_b = half;
  env.pmem->alloc<double>("A", 1, &dims);
  env.pmem->store("A", data.data(), 1, &off_a, &half);
  env.pmem->store("A", data.data(), 1, &off_b, &half);
  std::vector<double> out(half);
  const std::size_t mid = half / 2;
  for (auto _ : state) {
    env.pmem->load("A", out.data(), 1, &mid, &half);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(half * 8) *
                          state.iterations());
}
BENCHMARK(BM_ArrayLoadCrossPiece);

}  // namespace

BENCHMARK_MAIN();
