// Deterministic flush/fence-efficiency audit.
//
// Runs a fixed-size workload through each storage layer with the
// persistency-order checker attached and prints, per phase, the CLWB/SFENCE
// traffic the layer generated plus any efficiency lints.  Unlike the
// micro_* benches (whose google-benchmark loops adapt iteration counts to
// wall-clock), every count here is exact and reproducible, so two builds
// can be diffed flush-for-flush.  EXPERIMENTS.md §"Persistency-order
// checker" uses this binary for its before/after numbers.
//
// Usage: flush_audit [--json PATH] [--baseline PATH]
//   --json      write the per-phase counters as JSON (one object per line)
//   --baseline  compare against a previously written JSON file and fail
//               (exit 1) if any phase's flush_ops or fence_ops grew —
//               ci.sh uses this as a flush-traffic regression gate.
#include <pmemcpy/check/persist_checker.hpp>
#include <pmemcpy/fs/filesystem.hpp>
#include <pmemcpy/obj/hashtable.hpp>
#include <pmemcpy/obj/plist.hpp>
#include <pmemcpy/trace/trace.hpp>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

namespace {

using pmemcpy::check::Report;
using pmemcpy::fs::FileSystem;
using pmemcpy::fs::OpenMode;
using pmemcpy::obj::HashTable;
using pmemcpy::obj::PList;
using pmemcpy::obj::Pool;
using pmemcpy::obj::Transaction;
using pmemcpy::pmem::Device;

struct Phase {
  std::string name;
  Report delta;
};

std::vector<Phase> phases;

Report report_delta(const Report& before, Report after) {
  after.store_ops -= before.store_ops;
  after.flush_ops -= before.flush_ops;
  after.lines_flushed -= before.lines_flushed;
  after.fence_ops -= before.fence_ops;
  // The lint tallies must be deltas too: the ht-batch phases share one
  // device, so without these a stage-phase lint would leak into the
  // commit-phase row.
  after.clean_flushes -= before.clean_flushes;
  after.duplicate_flushes -= before.duplicate_flushes;
  after.empty_fences -= before.empty_fences;
  after.correctness_violations -= before.correctness_violations;
  return after;
}

/// One phase delta as a trace-schema counter row (the first eight trace
/// counters mirror check::Report field-for-field).
void delta_to_row(
    const Report& d,
    std::uint64_t (&row)[static_cast<int>(
        pmemcpy::trace::Counter::kNumCounters)]) {
  using pmemcpy::trace::Counter;
  for (auto& v : row) v = 0;
  row[static_cast<int>(Counter::kStoreOps)] = d.store_ops;
  row[static_cast<int>(Counter::kFlushOps)] = d.flush_ops;
  row[static_cast<int>(Counter::kLinesFlushed)] = d.lines_flushed;
  row[static_cast<int>(Counter::kFenceOps)] = d.fence_ops;
  row[static_cast<int>(Counter::kCleanFlushes)] = d.clean_flushes;
  row[static_cast<int>(Counter::kDuplicateFlushes)] = d.duplicate_flushes;
  row[static_cast<int>(Counter::kEmptyFences)] = d.empty_fences;
  row[static_cast<int>(Counter::kCorrectnessViolations)] =
      d.correctness_violations;
}

/// Runs @p fn on a fresh checked device and records the traffic delta.
template <typename Fn>
void audit(const std::string& name, std::size_t dev_bytes, Fn&& fn) {
  Device dev(dev_bytes);
  dev.enable_checker();
  const Report before = dev.checker()->report();
  fn(dev);
  phases.push_back({name, report_delta(before, dev.checker()->report())});
}

bool write_json(const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "flush_audit: cannot write %s\n", path);
    return false;
  }
  std::fprintf(f, "[\n");
  for (std::size_t i = 0; i < phases.size(); ++i) {
    // Serialise through the shared trace counter schema: the first four
    // fields stay in the exact layout check_baseline()'s sscanf expects,
    // and lint tallies ride along as nonzero-only extras.
    std::uint64_t row[static_cast<int>(
        pmemcpy::trace::Counter::kNumCounters)];
    delta_to_row(phases[i].delta, row);
    std::fprintf(f, "{\"phase\": \"%s\", %s}%s\n", phases[i].name.c_str(),
                 pmemcpy::trace::schema_fields(row).c_str(),
                 i + 1 < phases.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  return true;
}

struct BaselineRow {
  unsigned long long flush_ops = 0;
  unsigned long long fence_ops = 0;
};

/// Parses the one-object-per-line JSON write_json() emits.  Phases present
/// only on one side are skipped (new phases must not fail old baselines).
bool check_baseline(const char* path) {
  std::FILE* f = std::fopen(path, "r");
  if (f == nullptr) {
    std::fprintf(stderr, "flush_audit: cannot read baseline %s\n", path);
    return false;
  }
  std::map<std::string, BaselineRow> base;
  char line[512];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    char name[128];
    unsigned long long store = 0, flush = 0, lines = 0, fence = 0;
    if (std::sscanf(line,
                    "{\"phase\": \"%127[^\"]\", \"store_ops\": %llu, "
                    "\"flush_ops\": %llu, \"lines_flushed\": %llu, "
                    "\"fence_ops\": %llu}",
                    name, &store, &flush, &lines, &fence) == 5) {
      base[name] = {flush, fence};
    }
  }
  std::fclose(f);

  bool ok = true;
  for (const auto& p : phases) {
    auto it = base.find(p.name);
    if (it == base.end()) continue;
    if (p.delta.flush_ops > it->second.flush_ops) {
      std::fprintf(stderr,
                   "flush_audit: REGRESSION %s flush_ops %llu > baseline "
                   "%llu\n",
                   p.name.c_str(),
                   static_cast<unsigned long long>(p.delta.flush_ops),
                   it->second.flush_ops);
      ok = false;
    }
    if (p.delta.fence_ops > it->second.fence_ops) {
      std::fprintf(stderr,
                   "flush_audit: REGRESSION %s fence_ops %llu > baseline "
                   "%llu\n",
                   p.name.c_str(),
                   static_cast<unsigned long long>(p.delta.fence_ops),
                   it->second.fence_ops);
      ok = false;
    }
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  const char* baseline_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: flush_audit [--json PATH] [--baseline PATH]\n");
      return 2;
    }
  }

  // Object store: snapshot transactions.  Two snapshots land on the same
  // cacheline so range coalescing in Transaction::commit is exercised.
  audit("tx-commit", 64ull << 20, [](Device& dev) {
    Pool pool = Pool::create(dev, 0, 64ull << 20);
    const auto off = pool.alloc(256);
    std::vector<std::byte> buf(256, std::byte{1});
    for (int i = 0; i < 10000; ++i) {
      Transaction tx(pool);
      tx.snapshot(off, 16);
      tx.snapshot(off + 16, 240);
      pool.write(off, buf.data(), buf.size());
      tx.commit();
    }
  });

  // Hashtable puts, sized to trigger several rehash doublings from 1k
  // buckets (reserve/publish staging + rehash node copies + header tx).
  audit("ht-put", 512ull << 20, [](Device& dev) {
    Pool pool = Pool::create(dev, 0, 512ull << 20);
    HashTable table = HashTable::create(pool, 1024);
    const std::string value(256, 'v');
    for (int i = 0; i < 20000; ++i) {
      table.put("key" + std::to_string(i), value.data(), value.size());
    }
  });

  // Group commit: stage 100 reserves, then publish them all under one
  // publish_group().  Recorded as two phases so the commit's fence cost is
  // visible on its own: the whole batch must cost at most 2 fences
  // (durability drain + visibility drain), not O(N).
  {
    Device dev(512ull << 20);
    dev.enable_checker();
    Pool pool = Pool::create(dev, 0, 512ull << 20);
    HashTable table = HashTable::create(pool, 1024);
    table.set_auto_grow(false);
    const std::string value(256, 'v');
    const Report before_stage = dev.checker()->report();
    std::vector<HashTable::Inserter> staged;
    staged.reserve(100);
    for (int i = 0; i < 100; ++i) {
      auto ins = table.reserve("bk" + std::to_string(i), value.size());
      auto span = ins.value();
      std::memcpy(span.data(), value.data(), value.size());
      ins.close_checker_scope();
      staged.push_back(std::move(ins));
    }
    const Report before_commit = dev.checker()->report();
    std::vector<HashTable::GroupPut> puts;
    puts.reserve(staged.size());
    for (auto& ins : staged) puts.push_back({&ins, false, false});
    table.publish_group(puts);
    const Report after = dev.checker()->report();
    phases.push_back({"ht-batch-stage",
                      report_delta(before_stage, before_commit)});
    phases.push_back({"ht-batch-commit", report_delta(before_commit, after)});
    if (phases.back().delta.fence_ops > 2) {
      std::fprintf(stderr,
                   "flush_audit: ht-batch-commit used %llu fences for a "
                   "100-put group commit (want <= 2)\n",
                   static_cast<unsigned long long>(
                       phases.back().delta.fence_ops));
      return 1;
    }
  }

  // Persistent list push/pop (node persist + link-in discipline).
  audit("plist", 64ull << 20, [](Device& dev) {
    Pool pool = Pool::create(dev, 0, 64ull << 20);
    PList list = PList::create(pool, 64);
    std::vector<std::byte> rec(64, std::byte{2});
    for (int i = 0; i < 10000; ++i) list.push(rec.data());
    while (list.pop(rec.data())) {
    }
  });

  // Filesystem format (bitmap + inode-table persist).
  audit("fs-format", 64ull << 20, [](Device& dev) {
    (void)FileSystem::format(dev, 0, 64ull << 20);
  });

  // POSIX path: sequential pwrite with periodic fsync — fsync must flush
  // exactly the dirtied lines and pay one fence.
  audit("fs-fsync", 64ull << 20, [](Device& dev) {
    FileSystem fs = FileSystem::format(dev, 0, 64ull << 20);
    auto f = fs.open("/data", OpenMode::kTruncate);
    std::vector<std::byte> buf(1024, std::byte{3});
    for (int i = 0; i < 1000; ++i) {
      fs.pwrite(f, buf.data(), buf.size(), std::uint64_t(i) * buf.size());
      if (i % 10 == 9) fs.fsync(f);
    }
  });

  // DAX path: store through a mapping, then Mapping::persist (one CLWB pass
  // over every extent run, one fence).
  audit("map-persist", 64ull << 20, [](Device& dev) {
    FileSystem fs = FileSystem::format(dev, 0, 64ull << 20);
    auto m = fs.create_mapped("/m", 1 << 20);
    std::vector<std::byte> buf(4096, std::byte{4});
    for (int i = 0; i < 256; ++i) {
      m.store(std::uint64_t(i) * buf.size(), buf.data(), buf.size());
      m.persist(std::uint64_t(i) * buf.size(), buf.size());
    }
  });

  std::printf("%-16s %12s %10s %14s %10s %8s %8s %8s\n", "phase",
              "store_ops", "flush_ops", "lines_flushed", "fence_ops", "clean",
              "dup", "empty");
  for (const auto& p : phases) {
    std::printf("%-16s %12llu %10llu %14llu %10llu %8llu %8llu %8llu\n",
                p.name.c_str(),
                static_cast<unsigned long long>(p.delta.store_ops),
                static_cast<unsigned long long>(p.delta.flush_ops),
                static_cast<unsigned long long>(p.delta.lines_flushed),
                static_cast<unsigned long long>(p.delta.fence_ops),
                static_cast<unsigned long long>(p.delta.clean_flushes),
                static_cast<unsigned long long>(p.delta.duplicate_flushes),
                static_cast<unsigned long long>(p.delta.empty_fences));
  }

  if (json_path != nullptr && !write_json(json_path)) return 1;
  if (baseline_path != nullptr && !check_baseline(baseline_path)) return 1;
  return 0;
}
