// Deterministic flush/fence-efficiency audit.
//
// Runs a fixed-size workload through each storage layer with the
// persistency-order checker attached and prints, per phase, the CLWB/SFENCE
// traffic the layer generated plus any efficiency lints.  Unlike the
// micro_* benches (whose google-benchmark loops adapt iteration counts to
// wall-clock), every count here is exact and reproducible, so two builds
// can be diffed flush-for-flush.  EXPERIMENTS.md §"Persistency-order
// checker" uses this binary for its before/after numbers.
#include <pmemcpy/check/persist_checker.hpp>
#include <pmemcpy/fs/filesystem.hpp>
#include <pmemcpy/obj/hashtable.hpp>
#include <pmemcpy/obj/plist.hpp>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace {

using pmemcpy::check::Report;
using pmemcpy::fs::FileSystem;
using pmemcpy::fs::OpenMode;
using pmemcpy::obj::HashTable;
using pmemcpy::obj::PList;
using pmemcpy::obj::Pool;
using pmemcpy::obj::Transaction;
using pmemcpy::pmem::Device;

struct Phase {
  std::string name;
  Report delta;
};

std::vector<Phase> phases;

/// Runs @p fn on a fresh checked device and records the traffic delta.
template <typename Fn>
void audit(const std::string& name, std::size_t dev_bytes, Fn&& fn) {
  Device dev(dev_bytes);
  dev.enable_checker();
  const Report before = dev.checker()->report();
  fn(dev);
  Report after = dev.checker()->report();
  after.store_ops -= before.store_ops;
  after.flush_ops -= before.flush_ops;
  after.lines_flushed -= before.lines_flushed;
  after.fence_ops -= before.fence_ops;
  phases.push_back({name, std::move(after)});
}

}  // namespace

int main() {
  // Object store: snapshot transactions.  Two snapshots land on the same
  // cacheline so range coalescing in Transaction::commit is exercised.
  audit("tx-commit", 64ull << 20, [](Device& dev) {
    Pool pool = Pool::create(dev, 0, 64ull << 20);
    const auto off = pool.alloc(256);
    std::vector<std::byte> buf(256, std::byte{1});
    for (int i = 0; i < 10000; ++i) {
      Transaction tx(pool);
      tx.snapshot(off, 16);
      tx.snapshot(off + 16, 240);
      pool.write(off, buf.data(), buf.size());
      tx.commit();
    }
  });

  // Hashtable puts, sized to trigger several rehash doublings from 1k
  // buckets (reserve/publish staging + rehash node copies + header tx).
  audit("ht-put", 512ull << 20, [](Device& dev) {
    Pool pool = Pool::create(dev, 0, 512ull << 20);
    HashTable table = HashTable::create(pool, 1024);
    const std::string value(256, 'v');
    for (int i = 0; i < 20000; ++i) {
      table.put("key" + std::to_string(i), value.data(), value.size());
    }
  });

  // Persistent list push/pop (node persist + link-in discipline).
  audit("plist", 64ull << 20, [](Device& dev) {
    Pool pool = Pool::create(dev, 0, 64ull << 20);
    PList list = PList::create(pool, 64);
    std::vector<std::byte> rec(64, std::byte{2});
    for (int i = 0; i < 10000; ++i) list.push(rec.data());
    while (list.pop(rec.data())) {
    }
  });

  // Filesystem format (bitmap + inode-table persist).
  audit("fs-format", 64ull << 20, [](Device& dev) {
    (void)FileSystem::format(dev, 0, 64ull << 20);
  });

  // POSIX path: sequential pwrite with periodic fsync — fsync must flush
  // exactly the dirtied lines and pay one fence.
  audit("fs-fsync", 64ull << 20, [](Device& dev) {
    FileSystem fs = FileSystem::format(dev, 0, 64ull << 20);
    auto f = fs.open("/data", OpenMode::kTruncate);
    std::vector<std::byte> buf(1024, std::byte{3});
    for (int i = 0; i < 1000; ++i) {
      fs.pwrite(f, buf.data(), buf.size(), std::uint64_t(i) * buf.size());
      if (i % 10 == 9) fs.fsync(f);
    }
  });

  // DAX path: store through a mapping, then Mapping::persist (one CLWB pass
  // over every extent run, one fence).
  audit("map-persist", 64ull << 20, [](Device& dev) {
    FileSystem fs = FileSystem::format(dev, 0, 64ull << 20);
    auto m = fs.create_mapped("/m", 1 << 20);
    std::vector<std::byte> buf(4096, std::byte{4});
    for (int i = 0; i < 256; ++i) {
      m.store(std::uint64_t(i) * buf.size(), buf.data(), buf.size());
      m.persist(std::uint64_t(i) * buf.size(), buf.size());
    }
  });

  std::printf("%-12s %12s %10s %14s %10s %8s %8s %8s\n", "phase",
              "store_ops", "flush_ops", "lines_flushed", "fence_ops", "clean",
              "dup", "empty");
  for (const auto& p : phases) {
    std::printf("%-12s %12llu %10llu %14llu %10llu %8llu %8llu %8llu\n",
                p.name.c_str(),
                static_cast<unsigned long long>(p.delta.store_ops),
                static_cast<unsigned long long>(p.delta.flush_ops),
                static_cast<unsigned long long>(p.delta.lines_flushed),
                static_cast<unsigned long long>(p.delta.fence_ops),
                static_cast<unsigned long long>(p.delta.clean_flushes),
                static_cast<unsigned long long>(p.delta.duplicate_flushes),
                static_cast<unsigned long long>(p.delta.empty_fences));
  }
  return 0;
}
