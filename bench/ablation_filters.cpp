// ABL-FILTER: transparent compression on the Figure-6 workload at 24 procs.
// Filters trade an extra DRAM encode/decode pass for fewer bytes through
// the 8 GB/s PMEM write channel, so the win depends entirely on the data:
//   zeros   — fully compressible (RLE collapses it)
//   smooth  — monotone field (delta-varint shrinks it well)
//   random  — incompressible (filters are pure overhead)
#include "figures_common.hpp"

#include <random>

namespace {

using namespace figbench;
using pmemcpy::serial::FilterId;

enum class DataKind { kZeros, kSmooth, kRandom };

const char* kind_name(DataKind k) {
  switch (k) {
    case DataKind::kZeros: return "zeros";
    case DataKind::kSmooth: return "smooth";
    case DataKind::kRandom: return "random";
  }
  return "?";
}

void fill(DataKind kind, std::vector<double>& buf, std::size_t elems,
          unsigned seed) {
  buf.resize(elems);
  switch (kind) {
    case DataKind::kZeros:
      std::fill(buf.begin(), buf.end(), 0.0);
      break;
    case DataKind::kSmooth:
      for (std::size_t i = 0; i < elems; ++i) {
        buf[i] = 1e6 + static_cast<double>(i);
      }
      break;
    case DataKind::kRandom: {
      std::mt19937_64 rng(seed);
      for (auto& v : buf) {
        v = static_cast<double>(rng()) / 1e6;
      }
      break;
    }
  }
}

struct Result {
  double write_s = 0, read_s = 0;
  std::uint64_t device_bytes = 0;
};

Result run(FilterId filter, DataKind kind, const wk::Decomposition& dec,
           int nvars, int nranks) {
  const std::size_t bytes = dec.total_elements() * sizeof(double) *
                            static_cast<std::size_t>(nvars);
  // Worst case: RLE on incompressible data doubles the payload.
  auto node = make_node(IoLib::kPmcpyA, bytes * 2 + (64ull << 20));
  Result out;
  const auto before = node->device().bytes_written();
  auto wr = pmemcpy::par::Runtime::run(nranks, [&](pmemcpy::par::Comm& comm) {
    const Box& mine = dec.rank_boxes[static_cast<std::size_t>(comm.rank())];
    pmemcpy::Config cfg;
    cfg.node = node.get();
    cfg.filter = filter;
    pmemcpy::PMEM pmem{cfg};
    pmem.mmap("/flt.pmem", comm);
    std::vector<double> buf;
    for (int v = 0; v < nvars; ++v) {
      fill(kind, buf, mine.elements(),
           static_cast<unsigned>(v * 1000 + comm.rank()));
      pmem.alloc<double>(var_name(v), dec.global);
      pmem.store(var_name(v), buf.data(), 3, mine.offset.data(),
                 mine.count.data());
    }
    pmem.munmap();
  });
  out.write_s = wr.max_time;
  out.device_bytes = node->device().bytes_written() - before;
  auto rd = pmemcpy::par::Runtime::run(nranks, [&](pmemcpy::par::Comm& comm) {
    const Box& mine = dec.rank_boxes[static_cast<std::size_t>(comm.rank())];
    pmemcpy::Config cfg;
    cfg.node = node.get();
    pmemcpy::PMEM pmem{cfg};
    pmem.mmap("/flt.pmem", comm);
    std::vector<double> buf(mine.elements());
    for (int v = 0; v < nvars; ++v) {
      pmem.load(var_name(v), buf.data(), 3, mine.offset.data(),
                mine.count.data());
    }
    pmem.munmap();
  });
  out.read_s = rd.max_time;
  return out;
}

}  // namespace

int main() {
  Params p = params_from_env();
  constexpr int kProcs = 24;
  const auto dec = wk::decompose(p.elems_per_var(), kProcs);
  std::printf("ablation_filters: %.3f GiB at %d procs\n", p.gib, kProcs);
  std::printf("%-8s %-8s %12s %12s %14s\n", "data", "filter", "write(s)",
              "read(s)", "device MiB");

  for (const DataKind kind :
       {DataKind::kZeros, DataKind::kSmooth, DataKind::kRandom}) {
    for (const FilterId f :
         {FilterId::kNone, FilterId::kRle, FilterId::kDelta}) {
      const Result r = run(f, kind, dec, p.nvars, kProcs);
      std::printf("%-8s %-8s %12.4f %12.4f %14.1f\n", kind_name(kind),
                  pmemcpy::serial::filter_name(f), r.write_s, r.read_s,
                  static_cast<double>(r.device_bytes) / (1 << 20));
      std::fflush(stdout);
    }
  }
  std::printf("\nExpected shape: filters win when the data compresses (fewer "
              "bytes through the 8 GB/s device than the encode pass costs) "
              "and lose on random data (pure overhead) — the classic "
              "compression trade the HCompress line studies.\n");
  return 0;
}
