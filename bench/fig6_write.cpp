// Figure 6: "Performance of writing a 40GB 3-D domain to PMEM for a varying
// number of processes."  Series: ADIOS, NetCDF, pNetCDF, PMCPY-A (MAP_SYNC
// off), PMCPY-B (MAP_SYNC on).  Each process writes an equal share of ten
// 3-D variables; the time measured spans file open/mmap to close; each point
// is the mean of 3 runs.
//
// Scale with PMEMCPY_BENCH_GB (default 0.25); shapes are size-independent.
#include "figures_common.hpp"

int main() {
  using namespace figbench;
  const Params p = params_from_env();
  std::printf("fig6_write: %.3f GiB total, %d vars, %d reps\n", p.gib,
              p.nvars, p.reps);

  std::map<IoLib, std::vector<double>> series;
  for (const int nranks : p.counts) {
    const auto dec = wk::decompose(p.elems_per_var(), nranks);
    const std::size_t actual =
        dec.total_elements() * sizeof(double) *
        static_cast<std::size_t>(p.nvars);
    for (const IoLib lib : kAllLibs) {
      auto node = make_node(lib, actual);
      double sum = 0;
      for (int rep = 0; rep < p.reps; ++rep) {
        sum += run_write(lib, *node, dec, p.nvars, nranks);
      }
      series[lib].push_back(sum / p.reps);
      std::printf("  nprocs=%-3d %-8s %8.3f s\n", nranks, name(lib),
                  series[lib].back());
      std::fflush(stdout);
    }
  }
  print_figure("Figure 6: I/O library vs #processes (WRITES, seconds)",
               p.counts, series);
  print_claims(p.counts, series, 24);
  return 0;
}
