// Microbenchmarks for the object store: allocation, transactions, and the
// persistent hashtable (the metadata path of every pMEMCPY store()).
#include <pmemcpy/obj/hashtable.hpp>

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

namespace {

using pmemcpy::obj::HashTable;
using pmemcpy::obj::Pool;
using pmemcpy::obj::Transaction;
using pmemcpy::pmem::Device;

void BM_PoolAllocFree(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  Device dev(256ull << 20);
  Pool pool = Pool::create(dev, 0, 256ull << 20);
  for (auto _ : state) {
    const auto off = pool.alloc(bytes);
    benchmark::DoNotOptimize(off);
    pool.free(off);
  }
}
BENCHMARK(BM_PoolAllocFree)->Range(64, 1 << 20);

void BM_TransactionSnapshotCommit(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  Device dev(64ull << 20);
  Pool pool = Pool::create(dev, 0, 64ull << 20);
  const auto off = pool.alloc(bytes);
  std::vector<std::byte> buf(bytes, std::byte{1});
  for (auto _ : state) {
    Transaction tx(pool);
    tx.snapshot(off, bytes);
    pool.write(off, buf.data(), bytes);
    tx.commit();
  }
}
BENCHMARK(BM_TransactionSnapshotCommit)->Range(64, 16 << 10);

void BM_HashTablePut(benchmark::State& state) {
  Device dev(512ull << 20);
  Pool pool = Pool::create(dev, 0, 512ull << 20);
  HashTable table = HashTable::create(pool, 8192);
  const std::string value(256, 'v');
  std::uint64_t i = 0;
  for (auto _ : state) {
    table.put("key" + std::to_string(i++), value.data(), value.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HashTablePut);

void BM_HashTableFind(benchmark::State& state) {
  Device dev(256ull << 20);
  Pool pool = Pool::create(dev, 0, 256ull << 20);
  HashTable table = HashTable::create(pool, 8192);
  const std::string value(256, 'v');
  const auto nkeys = static_cast<std::uint64_t>(state.range(0));
  for (std::uint64_t i = 0; i < nkeys; ++i) {
    table.put("key" + std::to_string(i), value.data(), value.size());
  }
  std::uint64_t i = 0;
  for (auto _ : state) {
    auto ref = table.find("key" + std::to_string(i++ % nkeys));
    benchmark::DoNotOptimize(ref);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HashTableFind)->Arg(100)->Arg(10000);

void BM_HashTableReplace(benchmark::State& state) {
  Device dev(256ull << 20);
  Pool pool = Pool::create(dev, 0, 256ull << 20);
  HashTable table = HashTable::create(pool, 1024);
  const std::string value(256, 'v');
  for (auto _ : state) {
    table.put("hot-key", value.data(), value.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HashTableReplace);

void BM_HashTableReservePublish(benchmark::State& state) {
  // The direct-serialization write path used by pMEMCPY store().
  const auto bytes = static_cast<std::size_t>(state.range(0));
  Device dev(512ull << 20);
  Pool pool = Pool::create(dev, 0, 512ull << 20);
  HashTable table = HashTable::create(pool, 8192);
  for (auto _ : state) {
    auto ins = table.reserve("blob", bytes);
    auto span = ins.value();
    benchmark::DoNotOptimize(span.data());
    if (!ins.publish()) {
      state.SkipWithError("publish lost the race for 'blob'");
      break;
    }
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes) *
                          state.iterations());
}
BENCHMARK(BM_HashTableReservePublish)->Range(4 << 10, 4 << 20);

}  // namespace

BENCHMARK_MAIN();
