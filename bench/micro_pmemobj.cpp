// Microbenchmarks for the object store: allocation, transactions, and the
// persistent hashtable (the metadata path of every pMEMCPY store()).
#include <pmemcpy/obj/hashtable.hpp>

#include <benchmark/benchmark.h>

#include <string>
#include <thread>
#include <vector>

namespace {

using pmemcpy::obj::HashTable;
using pmemcpy::obj::Pool;
using pmemcpy::obj::Transaction;
using pmemcpy::pmem::Device;

void BM_PoolAllocFree(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  Device dev(256ull << 20);
  Pool pool = Pool::create(dev, 0, 256ull << 20);
  for (auto _ : state) {
    const auto off = pool.alloc(bytes);
    benchmark::DoNotOptimize(off);
    pool.free(off);
  }
}
BENCHMARK(BM_PoolAllocFree)->Range(64, 1 << 20);

/// Rank-scaling sweep over the allocator hot path (DESIGN.md §14): N
/// concurrent ranks churn mixed size classes through alloc/free.  Arg 0 is
/// the rank count, arg 1 selects the allocator configuration — 0 = classic
/// (single metadata lane, every op under the pool lock), 1 = magazines of
/// 8 over 8 striped lanes.  The wall-clock gap between the two rows at a
/// given rank count is the lock-convoy cost the magazines remove.
void BM_PoolAllocFreeRanks(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const bool magazines = state.range(1) != 0;
  constexpr int kOpsPerRank = 256;
  // Mixed size classes: a node-scale record, a small blob, a KiB blob.
  static constexpr std::size_t kSizes[] = {64, 480, 4000};
  Device dev(512ull << 20);
  Pool pool = Pool::create(dev, 0, 512ull << 20);
  pool.set_magazine_size(magazines ? 8 : 0);
  pool.set_alloc_stripes(magazines ? 8 : 1);
  pool.set_expected_contenders(ranks);
  for (auto _ : state) {
    std::vector<std::thread> ts;
    ts.reserve(static_cast<std::size_t>(ranks));
    for (int r = 0; r < ranks; ++r) {
      ts.emplace_back([&pool, r] {
        std::vector<std::uint64_t> held;
        held.reserve(kOpsPerRank);
        for (int i = 0; i < kOpsPerRank; ++i) {
          held.push_back(pool.alloc(kSizes[(r + i) % 3]));
          if (i % 4 == 3) {  // interleave frees with allocs
            pool.free(held[static_cast<std::size_t>(i - 2)]);
            held[static_cast<std::size_t>(i - 2)] = 0;
          }
        }
        for (const auto off : held) {
          if (off != 0) pool.free(off);
        }
      });
    }
    for (auto& t : ts) t.join();
    // Dead threads must not strand magazine-held chunks across iterations.
    pool.drain_magazines();
  }
  state.SetItemsProcessed(state.iterations() * ranks * kOpsPerRank * 2);
}
BENCHMARK(BM_PoolAllocFreeRanks)
    ->ArgsProduct({{1, 4, 12, 24, 48}, {0, 1}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_TransactionSnapshotCommit(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  Device dev(64ull << 20);
  Pool pool = Pool::create(dev, 0, 64ull << 20);
  const auto off = pool.alloc(bytes);
  std::vector<std::byte> buf(bytes, std::byte{1});
  for (auto _ : state) {
    Transaction tx(pool);
    tx.snapshot(off, bytes);
    pool.write(off, buf.data(), bytes);
    tx.commit();
  }
}
BENCHMARK(BM_TransactionSnapshotCommit)->Range(64, 16 << 10);

void BM_HashTablePut(benchmark::State& state) {
  Device dev(512ull << 20);
  Pool pool = Pool::create(dev, 0, 512ull << 20);
  HashTable table = HashTable::create(pool, 8192);
  const std::string value(256, 'v');
  std::uint64_t i = 0;
  for (auto _ : state) {
    table.put("key" + std::to_string(i++), value.data(), value.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HashTablePut);

void BM_HashTableFind(benchmark::State& state) {
  Device dev(256ull << 20);
  Pool pool = Pool::create(dev, 0, 256ull << 20);
  HashTable table = HashTable::create(pool, 8192);
  const std::string value(256, 'v');
  const auto nkeys = static_cast<std::uint64_t>(state.range(0));
  for (std::uint64_t i = 0; i < nkeys; ++i) {
    table.put("key" + std::to_string(i), value.data(), value.size());
  }
  std::uint64_t i = 0;
  for (auto _ : state) {
    auto ref = table.find("key" + std::to_string(i++ % nkeys));
    benchmark::DoNotOptimize(ref);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HashTableFind)->Arg(100)->Arg(10000);

void BM_HashTableReplace(benchmark::State& state) {
  Device dev(256ull << 20);
  Pool pool = Pool::create(dev, 0, 256ull << 20);
  HashTable table = HashTable::create(pool, 1024);
  const std::string value(256, 'v');
  for (auto _ : state) {
    table.put("hot-key", value.data(), value.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HashTableReplace);

void BM_HashTableReservePublish(benchmark::State& state) {
  // The direct-serialization write path used by pMEMCPY store().
  const auto bytes = static_cast<std::size_t>(state.range(0));
  Device dev(512ull << 20);
  Pool pool = Pool::create(dev, 0, 512ull << 20);
  HashTable table = HashTable::create(pool, 8192);
  for (auto _ : state) {
    auto ins = table.reserve("blob", bytes);
    auto span = ins.value();
    benchmark::DoNotOptimize(span.data());
    if (!ins.publish()) {
      state.SkipWithError("publish lost the race for 'blob'");
      break;
    }
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes) *
                          state.iterations());
}
BENCHMARK(BM_HashTableReservePublish)->Range(4 << 10, 4 << 20);

}  // namespace

BENCHMARK_MAIN();
