// ABL-LAYOUT: §3 "Data Layout" — flat hashtable in one pool (default)
// versus hierarchical file-per-variable on the PMEM filesystem.  The flat
// layout exploits the device's random-access parallelism via bucketed
// metadata; the hierarchical layout buys a browsable namespace at the cost
// of per-variable file/directory metadata.  Sweeps the variable count at a
// fixed total size so the metadata:data ratio grows.
#include "figures_common.hpp"

namespace {

using namespace figbench;
using pmemcpy::Layout;

double run_layout(Layout layout, PmemNode& node, const wk::Decomposition& dec,
                  int nvars, int nranks, bool read_phase) {
  node.device().reset_page_touches();
  auto result = pmemcpy::par::Runtime::run(
      nranks, [&](pmemcpy::par::Comm& comm) {
        const Box& mine =
            dec.rank_boxes[static_cast<std::size_t>(comm.rank())];
        pmemcpy::Config cfg;
        cfg.node = &node;
        cfg.layout = layout;
        pmemcpy::PMEM pmem{cfg};
        pmem.mmap(layout == Layout::kHashTable ? "/flat.pmem" : "/tree.bp",
                  comm);
        std::vector<double> buf;
        if (!read_phase) {
          for (int v = 0; v < nvars; ++v) {
            wk::fill_box(buf, v, dec.global, mine);
            pmem.alloc<double>("g/" + var_name(v), dec.global);
            pmem.store("g/" + var_name(v), buf.data(), 3,
                       mine.offset.data(), mine.count.data());
          }
        } else {
          buf.resize(mine.elements());
          for (int v = 0; v < nvars; ++v) {
            pmem.load("g/" + var_name(v), buf.data(), 3, mine.offset.data(),
                      mine.count.data());
          }
        }
        pmem.munmap();
      });
  return result.max_time;
}

}  // namespace

int main() {
  Params p = params_from_env();
  constexpr int kProcs = 16;
  std::printf("ablation_layout: %.3f GiB total at %d procs\n", p.gib, kProcs);
  std::printf("%-8s %14s %14s %14s %14s\n", "nvars", "flat-write",
              "tree-write", "flat-read", "tree-read");

  for (const int nvars : {1, 10, 100, 400}) {
    const std::size_t elems_per_var =
        p.total_bytes() / sizeof(double) / static_cast<std::size_t>(nvars);
    const auto dec = wk::decompose(
        std::max<std::size_t>(elems_per_var, kProcs), kProcs);
    const std::size_t bytes = dec.total_elements() * sizeof(double) *
                              static_cast<std::size_t>(nvars);

    PmemNode::Options flat_o;
    flat_o.pool_fraction = 0.9;
    flat_o.capacity = static_cast<std::size_t>(bytes * 1.8) + (96ull << 20);
    PmemNode flat_node(flat_o);
    PmemNode::Options tree_o;
    tree_o.pool_fraction = 0.02;
    // Extra headroom: file-per-variable needs inodes proportional to
    // nvars x nranks, and the inode table scales with capacity.
    tree_o.capacity =
        static_cast<std::size_t>(bytes * 1.8) + (640ull << 20);
    PmemNode tree_node(tree_o);

    const double fw =
        run_layout(pmemcpy::Layout::kHashTable, flat_node, dec, nvars, kProcs, false);
    const double tw =
        run_layout(pmemcpy::Layout::kHierarchical, tree_node, dec, nvars, kProcs, false);
    const double fr =
        run_layout(pmemcpy::Layout::kHashTable, flat_node, dec, nvars, kProcs, true);
    const double tr =
        run_layout(pmemcpy::Layout::kHierarchical, tree_node, dec, nvars, kProcs, true);
    std::printf("%-8d %14.4f %14.4f %14.4f %14.4f\n", nvars, fw, tw, fr, tr);
    std::fflush(stdout);
  }
  std::printf("\nExpected shape: near-parity for few large variables; the "
              "hierarchical layout falls behind as the variable count grows "
              "(directory + inode metadata per variable).\n");
  return 0;
}
