// ABL-SYNC: the paper's §4.1 claim that with MAP_SYNC enabled "the
// performance benefit of serializing/deserializing directly from PMEM is
// completely lost, and can even cause performance to be worse than simply
// using POSIX read()/write()".
//
// Compares, at each process count: pMEMCPY with MAP_SYNC off (PMCPY-A),
// with MAP_SYNC on (PMCPY-B), and a plain POSIX read()/write() path to the
// same PMEM filesystem (each rank writes its pieces to a private file with
// pwrite, reads them back with pread).
#include "figures_common.hpp"

namespace {

using namespace figbench;

/// POSIX baseline: per-rank file, staged serialize + pwrite / pread + copy.
double run_posix(PmemNode& node, const wk::Decomposition& dec, int nvars,
                 int nranks, bool read_phase) {
  node.device().reset_page_touches();
  auto result = pmemcpy::par::Runtime::run(
      nranks, [&](pmemcpy::par::Comm& comm) {
        auto& fs = node.fs();
        const Box& mine =
            dec.rank_boxes[static_cast<std::size_t>(comm.rank())];
        const std::string path =
            "/posix_rank" + std::to_string(comm.rank());
        std::vector<double> buf;
        if (!read_phase) {
          auto f = fs.open(path, pmemcpy::fs::OpenMode::kTruncate);
          std::uint64_t off = 0;
          for (int v = 0; v < nvars; ++v) {
            wk::fill_box(buf, v, dec.global, mine);
            fs.pwrite(f, buf.data(), buf.size() * sizeof(double), off);
            off += buf.size() * sizeof(double);
          }
          fs.fsync(f);
        } else {
          auto f = fs.open(path, pmemcpy::fs::OpenMode::kRead);
          buf.resize(mine.elements());
          std::uint64_t off = 0;
          for (int v = 0; v < nvars; ++v) {
            fs.pread(f, buf.data(), buf.size() * sizeof(double), off);
            off += buf.size() * sizeof(double);
          }
        }
        comm.barrier();
      });
  return result.max_time;
}

}  // namespace

int main() {
  Params p = params_from_env();
  std::printf("ablation_mapsync: %.3f GiB, %d reps\n", p.gib, p.reps);
  std::printf("%-8s %12s %12s %12s %12s %12s %12s\n", "nprocs", "A-write",
              "B-write", "posix-write", "A-read", "B-read", "posix-read");

  for (const int nranks : p.counts) {
    const auto dec = wk::decompose(p.elems_per_var(), nranks);
    const std::size_t bytes = dec.total_elements() * sizeof(double) *
                              static_cast<std::size_t>(p.nvars);
    double t[6] = {};
    for (int rep = 0; rep < p.reps; ++rep) {
      {
        auto node = make_node(IoLib::kPmcpyA, bytes);
        t[0] += run_write(IoLib::kPmcpyA, *node, dec, p.nvars, nranks);
        t[3] += run_read(IoLib::kPmcpyA, *node, dec, p.nvars, nranks, false);
      }
      {
        auto node = make_node(IoLib::kPmcpyB, bytes);
        t[1] += run_write(IoLib::kPmcpyB, *node, dec, p.nvars, nranks);
        t[4] += run_read(IoLib::kPmcpyB, *node, dec, p.nvars, nranks, false);
      }
      {
        auto node = make_node(IoLib::kAdios, bytes);  // fs-heavy split
        t[2] += run_posix(*node, dec, p.nvars, nranks, false);
        t[5] += run_posix(*node, dec, p.nvars, nranks, true);
      }
    }
    std::printf("%-8d", nranks);
    for (double v : t) std::printf("%12.4f", v / p.reps);
    std::printf("\n");
    std::fflush(stdout);
  }
  std::printf("\nExpected shape: B-write > posix-write in at least part of "
              "the sweep (the paper's \"worse than POSIX\" case), while "
              "A-write beats both.\n");
  return 0;
}
