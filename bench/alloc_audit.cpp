// Deterministic allocator hot-path audit (DESIGN.md §14).
//
// Runs the same 24-rank put workload through three allocator
// configurations and reports, per engine put, how much serialized metadata
// work the pool allocator did:
//   * alloc.lane_acquisitions — pool allocator lock acquisitions (slow
//     paths only: classic alloc/free, magazine refills and flush-backs);
//   * alloc.queue_charges — nonzero queueing delays charged by the
//     contention model (per-stripe depth, so stripes shrink this even at
//     equal lock counts);
//   * alloc.metadata_persists — flush/fence passes on allocator metadata
//     (undo-log batches, free-list stores, magazine seals).
// The phases are the ablation: "classic" (stripes=1, magazines off) is the
// pre-PR fully serialized path, "striped" adds the metadata lanes, and
// "magazine" adds the per-thread size-class caches.  The built-in gate is
// the tentpole claim: the magazine phase must show at least 4x fewer lock
// acquisitions AND queue charges per put than classic at 24 ranks, and the
// magazine fast path must actually be seen serving allocations.  Every
// count is exact and reproducible — the workload and the simulated clock
// are deterministic.
//
// Usage: alloc_audit [--json PATH] [--baseline PATH]
//   --json      write the per-phase counters as JSON (one object per line)
//   --baseline  compare against a previously written JSON file and fail
//               (exit 1) if any phase's lane acquisitions, queue charges or
//               metadata persists grew — ci.sh uses this as the allocator
//               regression gate on top of the built-in 4x gate.
#include <pmemcpy/par/comm.hpp>
#include <pmemcpy/pmemcpy.hpp>
#include <pmemcpy/trace/trace.hpp>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

namespace {

namespace trace = pmemcpy::trace;
using pmemcpy::Config;
using pmemcpy::PMEM;
using pmemcpy::PmemNode;

constexpr int kRanks = 24;
constexpr int kPutsPerRank = 32;

struct Phase {
  std::string name;
  std::uint64_t puts = 0;
  std::uint64_t lane_acquisitions = 0;
  std::uint64_t queue_charges = 0;
  std::uint64_t metadata_persists = 0;
  std::uint64_t magazine_hits = 0;
  std::uint64_t magazine_free_hits = 0;
  std::uint64_t magazine_refills = 0;
  double queue_delay_s = 0.0;  ///< summed simulated queueing seconds

  [[nodiscard]] double per_put(std::uint64_t v) const {
    return puts == 0 ? 0.0 : static_cast<double>(v) / static_cast<double>(puts);
  }
};

std::vector<Phase> phases;

/// Mixed-size-class put mix: every rank stores scalars, small vectors and a
/// few KiB-scale vectors, then overwrites half of them (driving the free
/// path) — allocator traffic on both the node and blob size classes.
void rank_puts(PMEM& pmem, int rank) {
  const std::string r = "r" + std::to_string(rank) + ".";
  for (int i = 0; i < kPutsPerRank; ++i) {
    const std::string key = r + std::to_string(i);
    switch (i % 3) {
      case 0:
        pmem.store(key, std::int64_t{rank * 1000 + i});
        break;
      case 1:
        pmem.store(key, std::vector<int>(24, i));
        break;
      default:
        pmem.store(key, std::vector<double>(256, double(i)));
        break;
    }
  }
  for (int i = 0; i < kPutsPerRank; i += 2) {
    pmem.store(r + std::to_string(i), std::vector<int>(12, rank + i));
  }
}

/// Runs the 24-rank workload under the given allocator knobs and records
/// the alloc.* counter deltas per engine put.
void audit(const std::string& name, int nranks, int magazine_size,
           int alloc_stripes) {
  PmemNode::Options nopts;
  nopts.capacity = 96ull << 20;
  PmemNode node(nopts);
  trace::reset();
  pmemcpy::par::Runtime::run(nranks, [&](pmemcpy::par::Comm& comm) {
    Config cfg;
    cfg.node = &node;
    cfg.auto_grow_table = false;  // rehash noise would blur the per-put rates
    cfg.magazine_size = magazine_size;
    cfg.alloc_stripes = alloc_stripes;
    PMEM pmem{cfg};
    pmem.mmap("/alloc.audit", comm);
    rank_puts(pmem, comm.rank());
    pmem.munmap();
  });
  Phase p;
  p.name = name;
  p.puts = trace::counter(trace::Counter::kEnginePuts);
  p.lane_acquisitions = trace::counter(trace::Counter::kAllocLaneAcquisitions);
  p.queue_charges = trace::counter(trace::Counter::kAllocQueueCharges);
  p.metadata_persists = trace::counter(trace::Counter::kAllocMetadataPersists);
  p.magazine_hits = trace::counter(trace::Counter::kAllocMagazineHits);
  p.magazine_free_hits =
      trace::counter(trace::Counter::kAllocMagazineFreeHits);
  p.magazine_refills = trace::counter(trace::Counter::kAllocMagazineRefills);
  p.queue_delay_s = trace::histogram(trace::Hist::kShardQueueDelay).sum;
  phases.push_back(std::move(p));
}

bool write_json(const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "alloc_audit: cannot write %s\n", path);
    return false;
  }
  std::fprintf(f, "[\n");
  for (std::size_t i = 0; i < phases.size(); ++i) {
    // Serialise through the shared trace counter schema (stats exporter,
    // flush_audit, copy_audit and this tool all emit the same field names).
    std::uint64_t row[static_cast<int>(trace::Counter::kNumCounters)] = {};
    row[static_cast<int>(trace::Counter::kEnginePuts)] = phases[i].puts;
    row[static_cast<int>(trace::Counter::kAllocLaneAcquisitions)] =
        phases[i].lane_acquisitions;
    row[static_cast<int>(trace::Counter::kAllocQueueCharges)] =
        phases[i].queue_charges;
    row[static_cast<int>(trace::Counter::kAllocMetadataPersists)] =
        phases[i].metadata_persists;
    row[static_cast<int>(trace::Counter::kAllocMagazineHits)] =
        phases[i].magazine_hits;
    row[static_cast<int>(trace::Counter::kAllocMagazineFreeHits)] =
        phases[i].magazine_free_hits;
    row[static_cast<int>(trace::Counter::kAllocMagazineRefills)] =
        phases[i].magazine_refills;
    std::fprintf(f, "{\"phase\": \"%s\", %s}%s\n", phases[i].name.c_str(),
                 trace::schema_fields(row).c_str(),
                 i + 1 < phases.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  return true;
}

/// Pulls `"field": N` out of a JSON line; absent (zero-suppressed) = 0.
std::uint64_t field_of(const char* line, const char* field) {
  const std::string pat = std::string("\"") + field + "\": ";
  const char* at = std::strstr(line, pat.c_str());
  if (at == nullptr) return 0;
  unsigned long long v = 0;
  std::sscanf(at + pat.size(), "%llu", &v);
  return v;
}

struct BaselineRow {
  std::uint64_t lane_acquisitions = 0;
  std::uint64_t queue_charges = 0;
  std::uint64_t metadata_persists = 0;
};

/// Parses the one-object-per-line JSON write_json() emits.  Phases present
/// only on one side are skipped (new phases must not fail old baselines).
bool check_baseline(const char* path) {
  std::FILE* f = std::fopen(path, "r");
  if (f == nullptr) {
    std::fprintf(stderr, "alloc_audit: cannot read baseline %s\n", path);
    return false;
  }
  std::map<std::string, BaselineRow> base;
  char line[1024];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    char name[128];
    if (std::sscanf(line, "{\"phase\": \"%127[^\"]\"", name) == 1) {
      base[name] = {field_of(line, "alloc_lane_acquisitions"),
                    field_of(line, "alloc_queue_charges"),
                    field_of(line, "alloc_metadata_persists")};
    }
  }
  std::fclose(f);

  const auto fail_grew = [](const Phase& p, const char* field,
                            std::uint64_t now, std::uint64_t was) {
    std::fprintf(stderr,
                 "alloc_audit: REGRESSION %s %s %llu > baseline %llu\n",
                 p.name.c_str(), field, static_cast<unsigned long long>(now),
                 static_cast<unsigned long long>(was));
  };
  bool ok = true;
  for (const auto& p : phases) {
    const auto it = base.find(p.name);
    if (it == base.end()) continue;
    if (p.lane_acquisitions > it->second.lane_acquisitions) {
      fail_grew(p, "alloc_lane_acquisitions", p.lane_acquisitions,
                it->second.lane_acquisitions);
      ok = false;
    }
    if (p.queue_charges > it->second.queue_charges) {
      fail_grew(p, "alloc_queue_charges", p.queue_charges,
                it->second.queue_charges);
      ok = false;
    }
    if (p.metadata_persists > it->second.metadata_persists) {
      fail_grew(p, "alloc_metadata_persists", p.metadata_persists,
                it->second.metadata_persists);
      ok = false;
    }
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  const char* baseline_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: alloc_audit [--json PATH] [--baseline PATH]\n");
      return 2;
    }
  }

  trace::set_enabled(true);

  // The ablation ladder at 24 ranks, plus a serial sanity row (the engine
  // defaults, one rank: the fast path must not add work when uncontended).
  audit("classic-24r", kRanks, /*magazine_size=*/0, /*alloc_stripes=*/1);
  audit("striped-24r", kRanks, /*magazine_size=*/0, /*alloc_stripes=*/8);
  audit("magazine-24r", kRanks, /*magazine_size=*/8, /*alloc_stripes=*/8);
  audit("serial-1r", 1, /*magazine_size=*/-1, /*alloc_stripes=*/-1);

  std::printf("%-14s %8s %12s %12s %12s %12s %10s %10s %10s\n", "phase",
              "puts", "lane_acq", "queue_chg", "queue_sec", "meta_persist",
              "mag_hits", "mag_frees", "refills");
  for (const auto& p : phases) {
    std::printf(
        "%-14s %8llu %12llu %12llu %12.6f %12llu %10llu %10llu %10llu\n",
        p.name.c_str(), static_cast<unsigned long long>(p.puts),
        static_cast<unsigned long long>(p.lane_acquisitions),
        static_cast<unsigned long long>(p.queue_charges), p.queue_delay_s,
        static_cast<unsigned long long>(p.metadata_persists),
        static_cast<unsigned long long>(p.magazine_hits),
        static_cast<unsigned long long>(p.magazine_free_hits),
        static_cast<unsigned long long>(p.magazine_refills));
  }
  std::printf("per put: classic lane=%.3f queue=%.3f | magazine lane=%.3f "
              "queue=%.3f\n",
              phases[0].per_put(phases[0].lane_acquisitions),
              phases[0].per_put(phases[0].queue_charges),
              phases[2].per_put(phases[2].lane_acquisitions),
              phases[2].per_put(phases[2].queue_charges));

  // The tentpole gate: >=4x fewer lock acquisitions AND queue charges per
  // put with magazines + stripes than on the classic path, at 24 ranks.
  bool ok = true;
  const Phase& classic = phases[0];
  const Phase& magazine = phases[2];
  const auto gate_4x = [&](const char* what, std::uint64_t fast,
                           std::uint64_t slow) {
    if (fast * 4 > slow) {
      std::fprintf(stderr,
                   "alloc_audit: FAIL %s not 4x better: magazine %llu vs "
                   "classic %llu\n",
                   what, static_cast<unsigned long long>(fast),
                   static_cast<unsigned long long>(slow));
      ok = false;
    }
  };
  if (classic.puts != magazine.puts) {
    std::fprintf(stderr, "alloc_audit: FAIL phase put counts differ\n");
    ok = false;
  }
  gate_4x("lane acquisitions", magazine.lane_acquisitions,
          classic.lane_acquisitions);
  gate_4x("queue charges", magazine.queue_charges, classic.queue_charges);
  if (magazine.magazine_hits == 0 || magazine.magazine_free_hits == 0) {
    std::fprintf(stderr,
                 "alloc_audit: FAIL magazine fast path never served an "
                 "alloc/free — instrumentation or arming is broken\n");
    ok = false;
  }
  if (classic.magazine_hits != 0) {
    std::fprintf(stderr,
                 "alloc_audit: FAIL classic phase saw magazine hits — the "
                 "knob plumbing is broken\n");
    ok = false;
  }

  if (json_path != nullptr && !write_json(json_path)) ok = false;
  if (baseline_path != nullptr && !check_baseline(baseline_path)) ok = false;
  return ok ? 0 : 1;
}
