// ABL-CHUNK: HDF5's chunked vs contiguous dataset layout (paper §2.1
// background) on the NetCDF4/HDF5 engine at 24 procs.  Chunking aligns the
// file layout with block decompositions — when chunk dims match the
// per-rank boxes, each rank's data is file-contiguous and the shuffle
// becomes cheap rearrangement; when they don't, runs fragment and the
// metadata (run headers) balloon.
#include "figures_common.hpp"

namespace {

using namespace figbench;
using pmemcpy::Dimensions;

struct Result {
  double write_s = 0, read_s = 0;
};

Result run(const Dimensions& chunk, const wk::Decomposition& dec, int nvars,
           int nranks) {
  const std::size_t bytes = dec.total_elements() * sizeof(double) *
                            static_cast<std::size_t>(nvars);
  auto node = make_node(IoLib::kNetcdf, bytes * 2);  // chunk padding headroom
  Result out;
  auto wr = pmemcpy::par::Runtime::run(nranks, [&](pmemcpy::par::Comm& comm) {
    const Box& mine = dec.rank_boxes[static_cast<std::size_t>(comm.rank())];
    auto w = miniio::open_writer(miniio::Library::kNetcdf4, *node,
                                 "/chunk.h5", comm);
    w->set_chunk(chunk);
    std::vector<double> buf;
    for (int v = 0; v < nvars; ++v) {
      wk::fill_box(buf, v, dec.global, mine);
      w->write(var_name(v), buf.data(), mine, dec.global);
    }
    w->close();
  });
  out.write_s = wr.max_time;
  auto rd = pmemcpy::par::Runtime::run(nranks, [&](pmemcpy::par::Comm& comm) {
    const Box& mine = dec.rank_boxes[static_cast<std::size_t>(comm.rank())];
    auto r = miniio::open_reader(miniio::Library::kNetcdf4, *node,
                                 "/chunk.h5", comm);
    std::vector<double> buf(mine.elements());
    for (int v = 0; v < nvars; ++v) {
      r->read(var_name(v), buf.data(), mine);
    }
    r->close();
  });
  out.read_s = rd.max_time;
  return out;
}

}  // namespace

int main() {
  Params p = params_from_env();
  constexpr int kProcs = 24;
  const auto dec = wk::decompose(p.elems_per_var(), kProcs);
  const Dimensions& box = dec.rank_boxes[0].count;
  std::printf("ablation_chunking: %.3f GiB at %d procs, per-rank box "
              "%zux%zux%zu\n",
              p.gib, kProcs, box[0], box[1], box[2]);
  std::printf("%-26s %12s %12s\n", "layout", "write(s)", "read(s)");

  struct Case {
    const char* name;
    Dimensions chunk;
  };
  const Case cases[] = {
      {"contiguous", {}},
      {"chunk = rank box", box},
      {"chunk = 1/2 rank box", {box[0] / 2, box[1] / 2, box[2] / 2}},
      {"chunk = misaligned", {box[0] - 1, box[1] + 1, box[2] - 1}},
      {"chunk = planes", {1, dec.global[1], dec.global[2]}},
  };
  for (const auto& c : cases) {
    const Result r = run(c.chunk, dec, p.nvars, kProcs);
    std::printf("%-26s %12.4f %12.4f\n", c.name, r.write_s, r.read_s);
    std::fflush(stdout);
  }
  std::printf("\nExpected shape: rank-box-aligned chunks beat contiguous "
              "(whole boxes become single file runs); misaligned chunks "
              "fragment runs and cost the most.\n");
  return 0;
}
