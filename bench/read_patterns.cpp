// READ-PATTERNS: extension experiment.  Figure 7 measures only the
// symmetric restart read; the paper's own motivation cites the "six degrees
// of scientific data" reading patterns (Lofstead et al. 2011): analysis
// jobs read planes, subvolumes, and restart with a different process count.
// This bench sweeps those patterns across the libraries at 24 writer procs,
// quantifying how each storage layout copes with non-symmetric access.
//
//   restart      each of 24 ranks reads exactly what it wrote (Fig. 7)
//   restart-12   12 ranks restart from a 24-rank checkpoint (2 pieces each)
//   plane-x      every rank reads one full x-plane (crosses many pieces)
//   subvolume    every rank reads a centred 1/8th subvolume
#include "figures_common.hpp"

namespace {

using namespace figbench;
using pmemcpy::Box;
using pmemcpy::Dimensions;

double run_pattern(IoLib lib, PmemNode& node, const wk::Decomposition& dec,
                   int nvars, int readers,
                   const std::function<Box(const wk::Decomposition&, int)>&
                       want_of) {
  node.device().reset_page_touches();
  auto result = pmemcpy::par::Runtime::run(
      readers, [&](pmemcpy::par::Comm& comm) {
        const Box want = want_of(dec, comm.rank());
        std::vector<double> buf(want.elements());
        if (is_pmcpy(lib)) {
          pmemcpy::PMEM pmem{pmcpy_config(lib, node)};
          pmem.mmap("/fig.pmem", comm);
          for (int v = 0; v < nvars; ++v) {
            pmem.load(var_name(v), buf.data(), 3, want.offset.data(),
                      want.count.data());
          }
          pmem.munmap();
        } else {
          const auto ml = lib == IoLib::kAdios     ? miniio::Library::kAdios
                          : lib == IoLib::kNetcdf ? miniio::Library::kNetcdf4
                                                  : miniio::Library::kPnetcdf;
          auto r = miniio::open_reader(ml, node, "/fig.out", comm);
          for (int v = 0; v < nvars; ++v) {
            r->read(var_name(v), buf.data(), want);
          }
          r->close();
        }
      });
  return result.max_time;
}

}  // namespace

int main() {
  Params p = params_from_env();
  constexpr int kWriters = 24;
  const auto dec = wk::decompose(p.elems_per_var(), kWriters);
  const std::size_t bytes = dec.total_elements() * sizeof(double) *
                            static_cast<std::size_t>(p.nvars);
  std::printf("read_patterns: %.3f GiB written by %d procs\n",
              static_cast<double>(bytes) / (1ull << 30), kWriters);

  struct Pattern {
    const char* name;
    int readers;
    std::function<Box(const wk::Decomposition&, int)> want;
  };
  const Pattern patterns[] = {
      {"restart (symmetric)", kWriters,
       [](const wk::Decomposition& d, int r) {
         return d.rank_boxes[static_cast<std::size_t>(r)];
       }},
      {"restart-12 (half the ranks)", 12,
       [](const wk::Decomposition& d, int r) {
         // Rank r re-reads writer boxes 2r and 2r+1 merged along dim 0 when
         // adjacent; otherwise reads their bounding box.
         const Box& a = d.rank_boxes[static_cast<std::size_t>(2 * r)];
         const Box& b = d.rank_boxes[static_cast<std::size_t>(2 * r + 1)];
         Box out;
         out.offset.resize(3);
         out.count.resize(3);
         for (std::size_t i = 0; i < 3; ++i) {
           const std::size_t lo = std::min(a.offset[i], b.offset[i]);
           const std::size_t hi = std::max(a.offset[i] + a.count[i],
                                           b.offset[i] + b.count[i]);
           out.offset[i] = lo;
           out.count[i] = hi - lo;
         }
         return out;
       }},
      {"plane-x (one x-plane each)", kWriters,
       [](const wk::Decomposition& d, int r) {
         return Box({static_cast<std::size_t>(r) % d.global[0], 0, 0},
                    {1, d.global[1], d.global[2]});
       }},
      {"subvolume (centred 1/8th)", kWriters,
       [](const wk::Decomposition& d, int) {
         return Box({d.global[0] / 4, d.global[1] / 4, d.global[2] / 4},
                    {d.global[0] / 2, d.global[1] / 2, d.global[2] / 2});
       }},
  };

  std::printf("%-30s", "pattern");
  for (const IoLib lib : kAllLibs) std::printf("%12s", name(lib));
  std::printf("\n");
  // One populated node per library, reused across patterns.
  std::map<IoLib, std::unique_ptr<PmemNode>> nodes;
  for (const IoLib lib : kAllLibs) {
    nodes[lib] = make_node(lib, bytes);
    (void)run_write(lib, *nodes[lib], dec, p.nvars, kWriters);
  }
  for (const auto& pat : patterns) {
    std::printf("%-30s", pat.name);
    for (const IoLib lib : kAllLibs) {
      std::printf("%12.4f", run_pattern(lib, *nodes[lib], dec, p.nvars,
                                        pat.readers, pat.want));
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("\nExpected shape: log-structured stores (pMEMCPY, ADIOS) win "
              "the symmetric patterns outright; the contiguous layouts "
              "close some of the gap on planes/subvolumes (their layout "
              "matches the access), as the six-degrees paper observed.\n");
  return 0;
}
