// READ-PATTERNS: extension experiment.  Figure 7 measures only the
// symmetric restart read; the paper's own motivation cites the "six degrees
// of scientific data" reading patterns (Lofstead et al. 2011): analysis
// jobs read planes, subvolumes, and restart with a different process count.
// This bench sweeps those patterns across the libraries at 24 writer procs,
// quantifying how each storage layout copes with non-symmetric access.
//
//   restart      each of 24 ranks reads exactly what it wrote (Fig. 7)
//   restart-12   12 ranks restart from a 24-rank checkpoint (2 pieces each)
//   plane-x      every rank reads one full x-plane (crosses many pieces)
//   subvolume    every rank reads a centred 1/8th subvolume
//
// Each library's store is opened ONCE per rank and every pattern is timed
// as a sim-clock delta inside that session (earlier revisions re-opened the
// pool per pattern, which both re-paid the open/recovery cost in every
// number and reset the pMEMCPY read cache before it could ever hit).  With
// the DRAM read cache armed (Config::read_cache_bytes; PMEMCPY_READ_CACHE
// overrides), pieces cached by earlier patterns accelerate the later
// overlapping ones, and the per-pattern cache/copy counter deltas printed
// below make that visible.
#include "figures_common.hpp"

#include <iterator>
#include <span>

namespace {

using namespace figbench;
using pmemcpy::Box;
using pmemcpy::Dimensions;

struct Pattern {
  const char* name;
  int readers;
  std::function<Box(const wk::Decomposition&, int)> want;
};

struct PatternStats {
  double time = 0.0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_hit_bytes = 0;
  std::uint64_t read_direct = 0;
  std::uint64_t read_staged = 0;
};

std::uint64_t ctr(pmemcpy::trace::Counter c) {
  return pmemcpy::trace::counter(c);
}

/// One session per rank; every pattern timed as a clock delta inside it.
void run_patterns(IoLib lib, PmemNode& node, const wk::Decomposition& dec,
                  int nvars, std::span<const Pattern> patterns,
                  std::span<PatternStats> stats) {
  namespace trace = pmemcpy::trace;
  node.device().reset_page_touches();
  pmemcpy::par::Runtime::run(24, [&](pmemcpy::par::Comm& comm) {
    std::unique_ptr<pmemcpy::PMEM> pmem;
    std::unique_ptr<miniio::Reader> reader;
    if (is_pmcpy(lib)) {
      auto cfg = pmcpy_config(lib, node);
      // Arm the DRAM read cache (per handle, so per rank); the env override
      // PMEMCPY_READ_CACHE still wins inside mmap().
      cfg.read_cache_bytes = 32u << 20;
      pmem = std::make_unique<pmemcpy::PMEM>(cfg);
      pmem->mmap("/fig.pmem", comm);
    } else {
      const auto ml = lib == IoLib::kAdios     ? miniio::Library::kAdios
                      : lib == IoLib::kNetcdf ? miniio::Library::kNetcdf4
                                              : miniio::Library::kPnetcdf;
      reader = miniio::open_reader(ml, node, "/fig.out", comm);
    }
    std::vector<double> buf;
    for (std::size_t i = 0; i < patterns.size(); ++i) {
      // Quiescent point: the previous pattern's allreduce has completed on
      // every rank, so rank 0's counter snapshot here is race-free.
      PatternStats before;
      if (comm.rank() == 0) {
        before.cache_hits = ctr(trace::Counter::kReadCacheHits);
        before.cache_misses = ctr(trace::Counter::kReadCacheMisses);
        before.cache_hit_bytes = ctr(trace::Counter::kReadCacheHitBytes);
        before.read_direct = ctr(trace::Counter::kCopyReadDirectBytes);
        before.read_staged = ctr(trace::Counter::kCopyReadStagedBytes);
      }
      comm.barrier();
      const double worst = comm.timed_max([&] {
        if (comm.rank() < patterns[i].readers) {
          const Box want = patterns[i].want(dec, comm.rank());
          buf.resize(want.elements());
          for (int v = 0; v < nvars; ++v) {
            if (pmem) {
              pmem->load(var_name(v), buf.data(), 3, want.offset.data(),
                         want.count.data());
            } else {
              reader->read(var_name(v), buf.data(), want);
            }
          }
        } else if (reader) {
          // The contiguous readers' read() is a collective two-phase
          // shuffle, and non-reading ranks still own stripes the readers
          // need — they must participate with an empty request.  pMEMCPY
          // loads are independent, so the pmem branch simply sits out.
          const Box none({0, 0, 0}, {0, 0, 0});
          double dummy = 0.0;
          for (int v = 0; v < nvars; ++v) {
            reader->read(var_name(v), &dummy, none);
          }
        }
      });
      if (comm.rank() == 0) {
        stats[i].time = worst;
        stats[i].cache_hits =
            ctr(trace::Counter::kReadCacheHits) - before.cache_hits;
        stats[i].cache_misses =
            ctr(trace::Counter::kReadCacheMisses) - before.cache_misses;
        stats[i].cache_hit_bytes =
            ctr(trace::Counter::kReadCacheHitBytes) - before.cache_hit_bytes;
        stats[i].read_direct =
            ctr(trace::Counter::kCopyReadDirectBytes) - before.read_direct;
        stats[i].read_staged =
            ctr(trace::Counter::kCopyReadStagedBytes) - before.read_staged;
      }
    }
    if (pmem) pmem->munmap();
    if (reader) reader->close();
  });
}

}  // namespace

int main() {
  pmemcpy::trace::set_enabled(true);
  Params p = params_from_env();
  constexpr int kWriters = 24;
  const auto dec = wk::decompose(p.elems_per_var(), kWriters);
  const std::size_t bytes = dec.total_elements() * sizeof(double) *
                            static_cast<std::size_t>(p.nvars);
  std::printf("read_patterns: %.3f GiB written by %d procs\n",
              static_cast<double>(bytes) / (1ull << 30), kWriters);

  const Pattern patterns[] = {
      {"restart (symmetric)", kWriters,
       [](const wk::Decomposition& d, int r) {
         return d.rank_boxes[static_cast<std::size_t>(r)];
       }},
      {"restart-12 (half the ranks)", 12,
       [](const wk::Decomposition& d, int r) {
         // Rank r re-reads writer boxes 2r and 2r+1 merged along dim 0 when
         // adjacent; otherwise reads their bounding box.
         const Box& a = d.rank_boxes[static_cast<std::size_t>(2 * r)];
         const Box& b = d.rank_boxes[static_cast<std::size_t>(2 * r + 1)];
         Box out;
         out.offset.resize(3);
         out.count.resize(3);
         for (std::size_t i = 0; i < 3; ++i) {
           const std::size_t lo = std::min(a.offset[i], b.offset[i]);
           const std::size_t hi = std::max(a.offset[i] + a.count[i],
                                           b.offset[i] + b.count[i]);
           out.offset[i] = lo;
           out.count[i] = hi - lo;
         }
         return out;
       }},
      {"plane-x (one x-plane each)", kWriters,
       [](const wk::Decomposition& d, int r) {
         return Box({static_cast<std::size_t>(r) % d.global[0], 0, 0},
                    {1, d.global[1], d.global[2]});
       }},
      {"subvolume (centred 1/8th)", kWriters,
       [](const wk::Decomposition& d, int) {
         return Box({d.global[0] / 4, d.global[1] / 4, d.global[2] / 4},
                    {d.global[0] / 2, d.global[1] / 2, d.global[2] / 2});
       }},
  };
  constexpr std::size_t kNumPatterns = std::size(patterns);

  // One populated node per library, reused across patterns.
  std::map<IoLib, std::unique_ptr<PmemNode>> nodes;
  for (const IoLib lib : kAllLibs) {
    nodes[lib] = make_node(lib, bytes);
    (void)run_write(lib, *nodes[lib], dec, p.nvars, kWriters);
  }
  std::map<IoLib, std::vector<PatternStats>> stats;
  for (const IoLib lib : kAllLibs) {
    stats[lib].resize(kNumPatterns);
    run_patterns(lib, *nodes[lib], dec, p.nvars, patterns, stats[lib]);
  }

  std::printf("%-30s", "pattern");
  for (const IoLib lib : kAllLibs) std::printf("%12s", name(lib));
  std::printf("\n");
  for (std::size_t i = 0; i < kNumPatterns; ++i) {
    std::printf("%-30s", patterns[i].name);
    for (const IoLib lib : kAllLibs) {
      std::printf("%12.4f", stats[lib][i].time);
    }
    std::printf("\n");
  }
  // Per-pattern read-cache and copy-direction deltas for the pMEMCPY
  // stacks: the cache warms across patterns within the open session, so
  // later overlapping patterns should show hits (EXPERIMENTS.md).
  for (const IoLib lib : {IoLib::kPmcpyA, IoLib::kPmcpyB}) {
    for (std::size_t i = 0; i < kNumPatterns; ++i) {
      const auto& s = stats[lib][i];
      std::printf("cache,%s,%s,hits=%llu,misses=%llu,hit_bytes=%llu,"
                  "rd_direct=%llu,rd_staged=%llu\n",
                  name(lib), patterns[i].name,
                  static_cast<unsigned long long>(s.cache_hits),
                  static_cast<unsigned long long>(s.cache_misses),
                  static_cast<unsigned long long>(s.cache_hit_bytes),
                  static_cast<unsigned long long>(s.read_direct),
                  static_cast<unsigned long long>(s.read_staged));
    }
  }
  std::printf("\nExpected shape: log-structured stores (pMEMCPY, ADIOS) win "
              "the symmetric patterns outright; the contiguous layouts "
              "close some of the gap on planes/subvolumes (their layout "
              "matches the access), as the six-degrees paper observed.\n");
  return 0;
}
