// ABL-BUCKETS: the paper's §3 claim that hashtable metadata "utilizes the
// high parallelism and random access characteristics of PMEM".  Sweeps the
// bucket count for a metadata-heavy workload (many tiny variables from many
// ranks): too few buckets serialize metadata updates on long chains; enough
// buckets let rank-parallel latency-bound updates proceed independently.
#include "figures_common.hpp"

namespace {

using namespace figbench;

double run_with_buckets(std::size_t nbuckets, PmemNode& node,
                        const wk::Decomposition& dec, int nvars, int nranks) {
  node.device().reset_page_touches();
  auto result = pmemcpy::par::Runtime::run(
      nranks, [&](pmemcpy::par::Comm& comm) {
        const Box& mine =
            dec.rank_boxes[static_cast<std::size_t>(comm.rank())];
        pmemcpy::Config cfg;
        cfg.node = &node;
        cfg.nbuckets = nbuckets;
        cfg.auto_grow_table = false;  // the sweep pins the bucket count
        pmemcpy::PMEM pmem{cfg};
        pmem.mmap("/b" + std::to_string(nbuckets), comm);
        std::vector<double> buf;
        for (int v = 0; v < nvars; ++v) {
          wk::fill_box(buf, v, dec.global, mine);
          pmem.alloc<double>(var_name(v), dec.global);
          pmem.store(var_name(v), buf.data(), 3, mine.offset.data(),
                     mine.count.data());
        }
        pmem.munmap();
      });
  return result.max_time;
}

}  // namespace

int main() {
  constexpr int kProcs = 24;
  constexpr int kVars = 500;  // 500 vars x 24 ranks = 12000 pieces + dims
  const auto dec = wk::decompose(static_cast<std::size_t>(kProcs) * 128,
                                 kProcs);  // tiny pieces: metadata dominates
  std::printf("ablation_nbuckets: %d tiny variables at %d procs "
              "(~%zu metadata entries)\n",
              kVars, kProcs,
              static_cast<std::size_t>(kVars) * (kProcs + 1));
  std::printf("%-10s %12s %16s\n", "nbuckets", "write(s)", "entries/bucket");

  for (const std::size_t nb : {16ull, 256ull, 4096ull, 65536ull}) {
    PmemNode::Options o;
    o.capacity = 1ull << 30;
    o.pool_fraction = 0.9;
    PmemNode node(o);
    const double t = run_with_buckets(nb, node, dec, kVars, kProcs);
    const double load =
        static_cast<double>(kVars) * (kProcs + 1) / static_cast<double>(nb);
    std::printf("%-10zu %12.4f %16.1f\n", nb, t, load);
    std::fflush(stdout);
  }
  std::printf("\nExpected shape: long chains (few buckets) pay linear key "
              "walks per insert — latency-bound PMEM reads — while large "
              "tables keep chains short and updates parallel.\n");
  return 0;
}
