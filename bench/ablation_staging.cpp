// ABL-STAGE: the paper's central mechanism claim — "unlike similar work
// which serializes data structures into an in-memory buffer and then copies
// to PMEM, pMEMCPY can serialize the data directly into PMEM ... avoiding a
// significant data copying cost."
//
// Runs the Figure-6/7 workload through pMEMCPY twice: once with direct
// serialization (default) and once with Config::force_dram_staging, which
// re-enables the DRAM staging pass other libraries pay.
#include "figures_common.hpp"

namespace {

using namespace figbench;

double run_staged(bool staged, PmemNode& node, const wk::Decomposition& dec,
                  int nvars, int nranks, bool read_phase) {
  node.device().reset_page_touches();
  auto result = pmemcpy::par::Runtime::run(
      nranks, [&](pmemcpy::par::Comm& comm) {
        const Box& mine =
            dec.rank_boxes[static_cast<std::size_t>(comm.rank())];
        pmemcpy::Config cfg;
        cfg.node = &node;
        cfg.force_dram_staging = staged;
        pmemcpy::PMEM pmem{cfg};
        pmem.mmap("/stage.pmem", comm);
        std::vector<double> buf;
        if (!read_phase) {
          for (int v = 0; v < nvars; ++v) {
            wk::fill_box(buf, v, dec.global, mine);
            pmem.alloc<double>(var_name(v), dec.global);
            pmem.store(var_name(v), buf.data(), 3, mine.offset.data(),
                       mine.count.data());
          }
        } else {
          buf.resize(mine.elements());
          for (int v = 0; v < nvars; ++v) {
            pmem.load(var_name(v), buf.data(), 3, mine.offset.data(),
                      mine.count.data());
          }
        }
        pmem.munmap();
      });
  return result.max_time;
}

}  // namespace

int main() {
  Params p = params_from_env();
  std::printf("ablation_staging: %.3f GiB, %d reps\n", p.gib, p.reps);
  std::printf("%-8s %14s %14s %10s %14s %14s %10s\n", "nprocs",
              "direct-write", "staged-write", "overhead", "direct-read",
              "staged-read", "overhead");

  for (const int nranks : p.counts) {
    const auto dec = wk::decompose(p.elems_per_var(), nranks);
    const std::size_t bytes = dec.total_elements() * sizeof(double) *
                              static_cast<std::size_t>(p.nvars);
    double dw = 0, sw = 0, dr = 0, sr = 0;
    for (int rep = 0; rep < p.reps; ++rep) {
      auto node = make_node(IoLib::kPmcpyA, bytes);
      dw += run_staged(false, *node, dec, p.nvars, nranks, false);
      dr += run_staged(false, *node, dec, p.nvars, nranks, true);
      sw += run_staged(true, *node, dec, p.nvars, nranks, false);
      sr += run_staged(true, *node, dec, p.nvars, nranks, true);
    }
    std::printf("%-8d %14.4f %14.4f %9.1f%% %14.4f %14.4f %9.1f%%\n", nranks,
                dw / p.reps, sw / p.reps, 100.0 * (sw - dw) / dw,
                dr / p.reps, sr / p.reps, 100.0 * (sr - dr) / dr);
    std::fflush(stdout);
  }
  std::printf("\nExpected shape: staging adds a full extra DRAM pass on the "
              "write side and on the symmetric read fast path — the copy "
              "pMEMCPY's direct (de)serialization avoids.\n");
  return 0;
}
