// ABL-SER: §3 "the BP4 serialization is used [by default]; however, other
// serialization tools can be added, and serialization can be completely
// disabled."  Sweeps the serializer (BP4-lite, cereal-style binary, raw =
// disabled) over the Figure-6 write and Figure-7 read workload at 24 procs,
// plus a many-small-variables workload where header overhead matters more.
#include "figures_common.hpp"

namespace {

using namespace figbench;
using pmemcpy::serial::SerializerId;

const char* ser_name(SerializerId s) {
  switch (s) {
    case SerializerId::kBp4: return "bp4";
    case SerializerId::kBinary: return "binary";
    case SerializerId::kRaw: return "raw(off)";
    case SerializerId::kCapnp: return "capnp";
  }
  return "?";
}

double run_with_serializer(SerializerId ser, PmemNode& node,
                           const wk::Decomposition& dec, int nvars,
                           int nranks, bool read_phase) {
  node.device().reset_page_touches();
  auto result = pmemcpy::par::Runtime::run(
      nranks, [&](pmemcpy::par::Comm& comm) {
        const Box& mine =
            dec.rank_boxes[static_cast<std::size_t>(comm.rank())];
        pmemcpy::Config cfg;
        cfg.node = &node;
        cfg.serializer = ser;
        pmemcpy::PMEM pmem{cfg};
        pmem.mmap("/ser.pmem", comm);
        std::vector<double> buf;
        if (!read_phase) {
          for (int v = 0; v < nvars; ++v) {
            wk::fill_box(buf, v, dec.global, mine);
            pmem.alloc<double>(var_name(v), dec.global);
            pmem.store(var_name(v), buf.data(), 3, mine.offset.data(),
                       mine.count.data());
          }
        } else {
          buf.resize(mine.elements());
          for (int v = 0; v < nvars; ++v) {
            pmem.load(var_name(v), buf.data(), 3, mine.offset.data(),
                      mine.count.data());
          }
        }
        pmem.munmap();
      });
  return result.max_time;
}

}  // namespace

int main() {
  Params p = params_from_env();
  constexpr int kProcs = 24;
  std::printf("ablation_serializers: %.3f GiB at %d procs, %d reps\n", p.gib,
              kProcs, p.reps);

  std::printf("\n-- bulk workload (10 large 3-D variables) --\n");
  std::printf("%-10s %12s %12s\n", "serializer", "write(s)", "read(s)");
  const auto dec = wk::decompose(p.elems_per_var(), kProcs);
  const std::size_t bytes =
      dec.total_elements() * sizeof(double) * static_cast<std::size_t>(p.nvars);
  for (const auto ser : {SerializerId::kBp4, SerializerId::kBinary,
                         SerializerId::kCapnp, SerializerId::kRaw}) {
    double w = 0, r = 0;
    auto node = make_node(IoLib::kPmcpyA, bytes);
    for (int rep = 0; rep < p.reps; ++rep) {
      w += run_with_serializer(ser, *node, dec, p.nvars, kProcs, false);
      r += run_with_serializer(ser, *node, dec, p.nvars, kProcs, true);
    }
    std::printf("%-10s %12.4f %12.4f\n", ser_name(ser), w / p.reps,
                r / p.reps);
  }

  std::printf("\n-- metadata-heavy workload (1000 tiny variables) --\n");
  std::printf("%-10s %12s %12s\n", "serializer", "write(s)", "read(s)");
  const auto tiny = wk::decompose(static_cast<std::size_t>(kProcs) * 64,
                                  kProcs);  // 64 doubles per rank per var
  for (const auto ser : {SerializerId::kBp4, SerializerId::kBinary,
                         SerializerId::kCapnp, SerializerId::kRaw}) {
    auto node = make_node(IoLib::kPmcpyA, 512ull << 20);
    const double w = run_with_serializer(ser, *node, tiny, 1000, kProcs,
                                         false);
    const double r = run_with_serializer(ser, *node, tiny, 1000, kProcs,
                                         true);
    std::printf("%-10s %12.4f %12.4f\n", ser_name(ser), w, r);
  }

  std::printf("\nExpected shape: bulk costs are bandwidth-bound and nearly "
              "serializer-independent; the tiny-variable sweep shows raw < "
              "binary < bp4 (header bytes and record framing).\n");
  return 0;
}
