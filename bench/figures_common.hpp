// Shared harness for the paper-figure benchmarks (Figures 6 and 7).
//
// Each data point runs the paper's workload — 10 3-D double-precision
// variables totalling PMEMCPY_BENCH_GB gibibytes, divided equally among
// nprocs ranks — through one of five I/O stacks:
//
//   ADIOS    miniADIOS (BP log, staged serialize + POSIX)
//   NetCDF   miniNetCDF4 (contiguous + two-phase shuffle + HDF5 overheads)
//   pNetCDF  miniPNetCDF (contiguous + two-phase shuffle)
//   PMCPY-A  pMEMCPY, MAP_SYNC disabled
//   PMCPY-B  pMEMCPY, MAP_SYNC enabled
//
// Reported numbers are simulated seconds on the paper's testbed model (see
// DESIGN.md §1); data movement and correctness are real.
#pragma once

#include <miniio/miniio.hpp>
#include <pmemcpy/pmemcpy.hpp>
#include <pmemcpy/trace/trace.hpp>
#include <pmemcpy/workload/domain3d.hpp>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace figbench {

using pmemcpy::Box;
using pmemcpy::PmemNode;
namespace wk = pmemcpy::wk;

enum class IoLib { kAdios, kNetcdf, kPnetcdf, kPmcpyA, kPmcpyB };

inline constexpr IoLib kAllLibs[] = {IoLib::kAdios, IoLib::kNetcdf,
                                     IoLib::kPnetcdf, IoLib::kPmcpyA,
                                     IoLib::kPmcpyB};

inline const char* name(IoLib lib) {
  switch (lib) {
    case IoLib::kAdios: return "ADIOS";
    case IoLib::kNetcdf: return "NetCDF";
    case IoLib::kPnetcdf: return "pNetCDF";
    case IoLib::kPmcpyA: return "PMCPY-A";
    case IoLib::kPmcpyB: return "PMCPY-B";
  }
  return "?";
}

struct Params {
  double gib = 0.25;  ///< total bytes per data point (all 10 variables)
  std::vector<int> counts = {8, 16, 24, 32, 48};
  int nvars = 10;
  int reps = 3;
  bool verify = true;

  [[nodiscard]] std::size_t total_bytes() const {
    return static_cast<std::size_t>(gib * 1024.0 * 1024.0 * 1024.0);
  }
  [[nodiscard]] std::size_t elems_per_var() const {
    return total_bytes() / sizeof(double) / static_cast<std::size_t>(nvars);
  }
};

inline Params params_from_env() {
  Params p;
  if (const char* gb = std::getenv("PMEMCPY_BENCH_GB")) p.gib = atof(gb);
  if (const char* r = std::getenv("PMEMCPY_BENCH_REPS")) p.reps = atoi(r);
  if (const char* v = std::getenv("PMEMCPY_BENCH_VERIFY")) p.verify = atoi(v);
  return p;
}

inline bool is_pmcpy(IoLib lib) {
  return lib == IoLib::kPmcpyA || lib == IoLib::kPmcpyB;
}

/// Shard count for the pmemcpy stacks (PMEMCPY_BENCH_SHARDS, default 1).
inline std::size_t bench_shards() {
  if (const char* s = std::getenv("PMEMCPY_BENCH_SHARDS")) {
    const int n = std::atoi(s);
    if (n > 0) return static_cast<std::size_t>(n);
  }
  return 1;
}

/// Fresh node sized for @p data_bytes of payload under the given stack.
inline std::unique_ptr<PmemNode> make_node(IoLib lib,
                                           std::size_t data_bytes) {
  PmemNode::Options o;
  if (is_pmcpy(lib)) {
    o.pool_fraction = 0.9;
    // Sharding splits the pool area evenly but hash-partitions keys
    // unevenly, so the fullest shard needs roughly 2x the mean load —
    // double the payload headroom whenever shards are on.
    const double headroom = bench_shards() > 1 ? 3.2 : 1.6;
    o.capacity =
        static_cast<std::size_t>(data_bytes * headroom) + (64ull << 20);
  } else {
    o.pool_fraction = 0.02;
    o.capacity = static_cast<std::size_t>(data_bytes * 1.6) + (64ull << 20);
  }
  return std::make_unique<PmemNode>(o);
}

inline std::string var_name(int v) { return "rect" + std::to_string(v); }

inline pmemcpy::Config pmcpy_config(IoLib lib, PmemNode& node) {
  pmemcpy::Config cfg;
  cfg.node = &node;
  cfg.map_sync = lib == IoLib::kPmcpyB;
  cfg.serializer = pmemcpy::serial::SerializerId::kBp4;
  cfg.layout = pmemcpy::Layout::kHashTable;
  // PMEMCPY_BENCH_SHARDS=S hash-partitions keys across S shard pools, so
  // the shards ablation (EXPERIMENTS.md) runs without a rebuild.
  if (const char* s = std::getenv("PMEMCPY_BENCH_SHARDS")) {
    const int n = std::atoi(s);
    if (n > 0) cfg.shards = static_cast<std::size_t>(n);
  }
  return cfg;
}

/// When tracing is on, print the per-phase decomposition of the slowest
/// rank's "fig.rank" span recorded after @p watermark: one row per charged
/// sim::Charge category (the phases a put decomposes into — serialize/copy,
/// pmem write, persist barriers, ...), summing to the span's wall time.
inline void print_phase_breakdown(const char* what, IoLib lib,
                                  std::uint64_t watermark) {
  namespace trace = pmemcpy::trace;
  if (!trace::enabled()) return;
  const auto spans = trace::snapshot();
  const trace::SpanData* crit = nullptr;
  for (const auto& s : spans) {
    if (s.id <= watermark || std::strcmp(s.name, "fig.rank") != 0) continue;
    if (crit == nullptr || s.duration_ns() > crit->duration_ns()) crit = &s;
  }
  if (crit == nullptr) return;
  std::printf("phase,%s,%s,rank%d", what, name(lib), crit->rank);
  double attributed = 0.0;
  for (int c = 0; c < trace::kNumChargeKinds; ++c) {
    const double sec = crit->charge_sec[c];
    if (sec <= 0.0) continue;
    attributed += sec;
    std::printf(",%s=%.6f",
                trace::charge_name(static_cast<pmemcpy::sim::Charge>(c)), sec);
  }
  std::printf(",attributed=%.6f,wall=%.6f\n", attributed,
              static_cast<double>(crit->duration_ns()) * 1e-9);
}

/// One timed collective write of all variables; returns critical-path
/// simulated seconds measured from open/mmap to close (paper §4.1).
inline double run_write(IoLib lib, PmemNode& node,
                        const wk::Decomposition& dec, int nvars, int nranks) {
  node.device().reset_page_touches();
  const std::uint64_t watermark = pmemcpy::trace::high_span_id();
  auto result = pmemcpy::par::Runtime::run(
      nranks, [&](pmemcpy::par::Comm& comm) {
        pmemcpy::trace::Span rank_span("fig.rank");
        const Box& mine =
            dec.rank_boxes[static_cast<std::size_t>(comm.rank())];
        // Generate outside the measured window (sim clock only advances on
        // charged operations, and generation charges nothing).
        std::vector<std::vector<double>> data(
            static_cast<std::size_t>(nvars));
        for (int v = 0; v < nvars; ++v) {
          wk::fill_box(data[static_cast<std::size_t>(v)], v, dec.global, mine);
        }
        if (is_pmcpy(lib)) {
          pmemcpy::PMEM pmem{pmcpy_config(lib, node)};
          pmem.mmap("/fig.pmem", comm);
          for (int v = 0; v < nvars; ++v) {
            pmem.alloc<double>(var_name(v), dec.global);
            pmem.store(var_name(v), data[static_cast<std::size_t>(v)].data(),
                       3, mine.offset.data(), mine.count.data());
          }
          pmem.munmap();
        } else {
          const auto ml = lib == IoLib::kAdios     ? miniio::Library::kAdios
                          : lib == IoLib::kNetcdf ? miniio::Library::kNetcdf4
                                                  : miniio::Library::kPnetcdf;
          auto w = miniio::open_writer(ml, node, "/fig.out", comm);
          for (int v = 0; v < nvars; ++v) {
            w->write(var_name(v), data[static_cast<std::size_t>(v)].data(),
                     mine, dec.global);
          }
          w->close();
        }
      });
  print_phase_breakdown("write", lib, watermark);
  return result.max_time;
}

/// One timed collective symmetric read of all variables.
inline double run_read(IoLib lib, PmemNode& node, const wk::Decomposition& dec,
                       int nvars, int nranks, bool verify) {
  node.device().reset_page_touches();
  const std::uint64_t watermark = pmemcpy::trace::high_span_id();
  auto result = pmemcpy::par::Runtime::run(
      nranks, [&](pmemcpy::par::Comm& comm) {
        pmemcpy::trace::Span rank_span("fig.rank");
        const Box& mine =
            dec.rank_boxes[static_cast<std::size_t>(comm.rank())];
        std::vector<double> buf(mine.elements());
        std::size_t bad = 0;
        if (is_pmcpy(lib)) {
          pmemcpy::PMEM pmem{pmcpy_config(lib, node)};
          pmem.mmap("/fig.pmem", comm);
          for (int v = 0; v < nvars; ++v) {
            pmem.load(var_name(v), buf.data(), 3, mine.offset.data(),
                      mine.count.data());
            if (verify) bad += wk::verify_box(buf, v, dec.global, mine);
          }
          pmem.munmap();
        } else {
          const auto ml = lib == IoLib::kAdios     ? miniio::Library::kAdios
                          : lib == IoLib::kNetcdf ? miniio::Library::kNetcdf4
                                                  : miniio::Library::kPnetcdf;
          auto r = miniio::open_reader(ml, node, "/fig.out", comm);
          for (int v = 0; v < nvars; ++v) {
            r->read(var_name(v), buf.data(), mine);
            if (verify) bad += wk::verify_box(buf, v, dec.global, mine);
          }
          r->close();
        }
        if (bad != 0) {
          throw std::runtime_error(std::string(name(lib)) +
                                   ": verification failed");
        }
      });
  print_phase_breakdown("read", lib, watermark);
  return result.max_time;
}

/// Print the figure as an aligned table plus CSV lines.
inline void print_figure(const std::string& title,
                         const std::vector<int>& counts,
                         const std::map<IoLib, std::vector<double>>& series) {
  std::printf("\n== %s ==\n", title.c_str());
  std::printf("%-8s", "nprocs");
  for (const auto& [lib, _] : series) std::printf("%12s", name(lib));
  std::printf("\n");
  for (std::size_t i = 0; i < counts.size(); ++i) {
    std::printf("%-8d", counts[i]);
    for (const auto& [_, times] : series) std::printf("%12.3f", times[i]);
    std::printf("\n");
  }
  std::printf("csv,nprocs");
  for (const auto& [lib, _] : series) std::printf(",%s", name(lib));
  std::printf("\n");
  for (std::size_t i = 0; i < counts.size(); ++i) {
    std::printf("csv,%d", counts[i]);
    for (const auto& [_, times] : series) std::printf(",%.4f", times[i]);
    std::printf("\n");
  }
}

/// Paper-claim summary at a given process count.
inline void print_claims(const std::vector<int>& counts,
                         const std::map<IoLib, std::vector<double>>& series,
                         int at_procs) {
  std::size_t idx = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == at_procs) idx = i;
  }
  const double a = series.at(IoLib::kPmcpyA)[idx];
  std::printf("\nAt %d procs (PMCPY-A baseline ratios):\n", at_procs);
  for (const auto& [lib, times] : series) {
    if (lib == IoLib::kPmcpyA) continue;
    std::printf("  %-8s / PMCPY-A = %.2fx\n", name(lib), times[idx] / a);
  }
}

}  // namespace figbench
