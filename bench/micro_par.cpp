// Microbenchmarks for the thread-ranked runtime: collective overheads at
// various rank counts (wall clock of the implementation, not sim time).
#include <pmemcpy/par/comm.hpp>

#include <benchmark/benchmark.h>

#include <vector>

namespace {

using pmemcpy::par::Comm;
using pmemcpy::par::Runtime;

void BM_RuntimeSpawn(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto r = Runtime::run(n, [](Comm&) {});
    benchmark::DoNotOptimize(r.max_time);
  }
}
BENCHMARK(BM_RuntimeSpawn)->Arg(8)->Arg(24)->Arg(48);

void BM_Barrier(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int iters = 100;
  for (auto _ : state) {
    Runtime::run(n, [&](Comm& c) {
      for (int i = 0; i < iters; ++i) c.barrier();
    });
  }
  state.SetItemsProcessed(state.iterations() * iters);
}
BENCHMARK(BM_Barrier)->Arg(8)->Arg(24);

void BM_Allgather(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const std::size_t bytes = 64 << 10;
  for (auto _ : state) {
    Runtime::run(n, [&](Comm& c) {
      std::vector<std::byte> send(bytes);
      std::vector<std::byte> recv(bytes * static_cast<std::size_t>(n));
      for (int i = 0; i < 10; ++i) {
        c.allgather(send.data(), bytes, recv.data());
      }
    });
  }
  state.SetBytesProcessed(state.iterations() * 10 *
                          static_cast<std::int64_t>(bytes) * n);
}
BENCHMARK(BM_Allgather)->Arg(8)->Arg(24);

void BM_Alltoallv(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const std::size_t per = 16 << 10;
  for (auto _ : state) {
    Runtime::run(n, [&](Comm& c) {
      const auto un = static_cast<std::size_t>(n);
      std::vector<std::byte> send(per * un), recv(per * un);
      std::vector<std::size_t> counts(un, per), displs(un);
      for (std::size_t i = 0; i < un; ++i) displs[i] = i * per;
      for (int i = 0; i < 10; ++i) {
        c.alltoallv(send.data(), counts, displs, recv.data(), counts, displs);
      }
    });
  }
  state.SetBytesProcessed(state.iterations() * 10 *
                          static_cast<std::int64_t>(per) * n * n);
}
BENCHMARK(BM_Alltoallv)->Arg(8)->Arg(24);

void BM_SendRecvPingPong(benchmark::State& state) {
  const std::size_t bytes = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Runtime::run(2, [&](Comm& c) {
      std::vector<std::byte> buf(bytes);
      for (int i = 0; i < 50; ++i) {
        if (c.rank() == 0) {
          c.send(1, 0, buf.data(), bytes);
          c.recv(1, 1, buf.data(), bytes);
        } else {
          c.recv(0, 0, buf.data(), bytes);
          c.send(0, 1, buf.data(), bytes);
        }
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * 50);
}
BENCHMARK(BM_SendRecvPingPong)->Arg(64)->Arg(64 << 10);

}  // namespace

BENCHMARK_MAIN();
