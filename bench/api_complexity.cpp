// TAB-API: the paper's §3 API-complexity comparison.  The paper counts the
// lines and lexical tokens of three equivalent programs — its Figures 3
// (pMEMCPY), 4 (HDF5) and 5 (ADIOS) — and reports 16 lines / 132 tokens vs
// 42 / 253 vs 24 / 164.  We embed the listings verbatim and recount with a
// simple C lexer.
#include <cctype>
#include <cstdio>
#include <string>
#include <vector>

namespace {

// Paper Figure 3 (pMEMCPY).
const char* kPmemcpySrc = R"(#include <pmemcpy/pmemcpy.h>
int main(int argc, char** argv) {
    int rank, nprocs;
    MPI_Init(&argc,&argv);
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    MPI_Comm_size(MPI_COMM_WORLD, &nprocs);
    pmemcpy::PMEM pmem;
    size_t count = 100;
    size_t off = 100*rank;
    size_t dimsf = 100*nprocs;
    char *path = argv[1];

    double data[100] = {0};
    pmem.mmap(path, MPI_COMM_WORLD);
    pmem.alloc<double>("A", 1, &dimsf);
    pmem.store<double>("A", data, 1, &off, &count);
    MPI_Finalize();
}
)";

// Paper Figure 4 (equivalent HDF5).
const char* kHdf5Src = R"(#include <hdf5.h>
int main (int argc, char **argv) {
  int nprocs, rank;
  MPI_Init(&argc, &argv);
  MPI_Comm_size(MPI_COMM_WORLD, &nprocs);
  MPI_Comm_rank(MPI_COMM_WORLD, &rank);
  hid_t file_id, dset_id;
  hid_t filespace, memspace;
  hsize_t count = 100;
  hsize_t offset = rank*100;
  hsize_t dimsf = nprocs*100;
  hid_t plist_id;
  herr_t status;
  char *path = argv[1];
  int data[100];

  plist_id = H5Pcreate(H5P_FILE_ACCESS);
  H5Pset_fapl_mpio(plist_id,
    MPI_COMM_WORLD, MPI_INFO_NULL);
  file_id = H5Fcreate(path,
    H5F_ACC_TRUNC, H5P_DEFAULT, plist_id);
  H5Pclose(plist_id);

  filespace = H5Screate_simple(1, &dimsf, NULL);
  dset_id = H5Dcreate(file_id, "dataset",
    H5T_NATIVE_INT, filespace, H5P_DEFAULT,
    H5P_DEFAULT, H5P_DEFAULT);
  H5Sclose(filespace);
  memspace = H5Screate_simple(1, &count, NULL);
  filespace = H5Dget_space(dset_id);
  H5Sselect_hyperslab(filespace,
    H5S_SELECT_SET, &offset,
    NULL, &count, NULL);

  plist_id = H5Pcreate(H5P_DATASET_XFER);
  status = H5Dwrite(dset_id, H5T_NATIVE_INT,
    memspace, filespace, plist_id, data);

  H5Dclose(dset_id);
  H5Sclose(filespace);
  H5Sclose(memspace);
  H5Pclose(plist_id);
  H5Fclose(file_id);
  MPI_Finalize();
  return 0;
}
)";

// Paper Figure 5 (equivalent ADIOS; the separate XML config that defines
// "A" in terms of count, off and dimsf is not counted, as in the paper).
const char* kAdiosSrc = R"(#include <adios.h>
int main(int argc, char **argv) {
    int rank, nprocs;
    MPI_Init(&argc, &argv);
    MPI_Comm_size(MPI_COMM_WORLD, &nprocs);
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    char *path = argv[1];
    char *config = argv[2];
    double data[100];
    int64_t adios_handle;
    size_t count = 100;
    size_t offset = 100*rank;
    size_t dimsf = 100*nprocs;

    adios_init(config, MPI_COMM_WORLD);
    adios_open (&adios_handle, "dataset",
      path, "w", MPI_COMM_WORLD);
    adios_write (adios_handle, "count", &count);
    adios_write (adios_handle, "dimsf", &dimsf);
    adios_write (adios_handle, "offset", &offset);
    adios_write (adios_handle, "A", data);
    adios_close (adios_handle);
    adios_finalize (rank);
    MPI_Finalize ();
    return 0;
}
)";

struct Counts {
  int lines = 0;
  int tokens = 0;
};

bool ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

/// Count non-blank lines and lexical tokens (identifiers/numbers keep
/// their preprocessor-style pieces together; every operator or punctuation
/// character is one token; string/char literals are one token).
Counts count(const std::string& src) {
  Counts c;
  bool line_has_content = false;
  for (std::size_t i = 0; i < src.size();) {
    const char ch = src[i];
    if (ch == '\n') {
      if (line_has_content) ++c.lines;
      line_has_content = false;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(ch))) {
      ++i;
      continue;
    }
    line_has_content = true;
    if (ident_char(ch)) {
      while (i < src.size() && ident_char(src[i])) ++i;
      ++c.tokens;
      continue;
    }
    if (ch == '"' || ch == '\'') {
      const char quote = ch;
      ++i;
      while (i < src.size() && src[i] != quote) {
        if (src[i] == '\\') ++i;
        ++i;
      }
      ++i;
      ++c.tokens;
      continue;
    }
    ++i;
    ++c.tokens;
  }
  if (line_has_content) ++c.lines;
  return c;
}

}  // namespace

int main() {
  struct Row {
    const char* name;
    const char* src;
    int paper_lines, paper_tokens;
  };
  const Row rows[] = {
      {"pMEMCPY (Fig.3)", kPmemcpySrc, 16, 132},
      {"HDF5    (Fig.4)", kHdf5Src, 42, 253},
      {"ADIOS   (Fig.5)", kAdiosSrc, 24, 164},
  };

  std::printf("== TAB-API: API complexity (paper §3) ==\n");
  std::printf("%-18s %8s %8s %14s %14s\n", "library", "lines", "tokens",
              "paper lines", "paper tokens");
  std::vector<Counts> measured;
  for (const auto& r : rows) {
    const Counts c = count(r.src);
    measured.push_back(c);
    std::printf("%-18s %8d %8d %14d %14d\n", r.name, c.lines, c.tokens,
                r.paper_lines, r.paper_tokens);
  }
  const double vs_hdf5 =
      100.0 * (1.0 - static_cast<double>(measured[0].tokens) /
                         static_cast<double>(measured[1].tokens));
  const double vs_adios =
      100.0 * (1.0 - static_cast<double>(measured[0].tokens) /
                         static_cast<double>(measured[2].tokens));
  std::printf("\npMEMCPY token reduction: %.0f%% vs HDF5, %.0f%% vs ADIOS\n",
              vs_hdf5, vs_adios);
  std::printf("(paper states a 92%% token reduction vs HDF5 for its "
              "counting method; ours is a plain C lexer)\n");
  return 0;
}
