// Microbenchmarks for the DAX filesystem: POSIX vs DAX path throughput,
// metadata ops, extent allocation.
#include <pmemcpy/fs/filesystem.hpp>

#include <benchmark/benchmark.h>

#include <vector>

namespace {

using pmemcpy::fs::FileSystem;
using pmemcpy::fs::OpenMode;
using pmemcpy::pmem::Device;

struct Env {
  Env() : dev(512ull << 20), fs(FileSystem::format(dev, 0, 512ull << 20)) {}
  Device dev;
  FileSystem fs;
};

void BM_PosixWrite(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  Env env;
  auto f = env.fs.open("/bench", OpenMode::kTruncate);
  env.fs.truncate(f, bytes);
  std::vector<std::byte> buf(bytes);
  for (auto _ : state) {
    env.fs.pwrite(f, buf.data(), bytes, 0);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes) *
                          state.iterations());
}
BENCHMARK(BM_PosixWrite)->Range(4 << 10, 16 << 20);

void BM_PosixRead(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  Env env;
  auto f = env.fs.open("/bench", OpenMode::kTruncate);
  std::vector<std::byte> buf(bytes);
  env.fs.pwrite(f, buf.data(), bytes, 0);
  for (auto _ : state) {
    env.fs.pread(f, buf.data(), bytes, 0);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes) *
                          state.iterations());
}
BENCHMARK(BM_PosixRead)->Range(4 << 10, 16 << 20);

void BM_DaxStore(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  Env env;
  auto m = env.fs.create_mapped("/dax", bytes);
  std::vector<std::byte> buf(bytes);
  for (auto _ : state) {
    m.store(0, buf.data(), bytes);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes) *
                          state.iterations());
}
BENCHMARK(BM_DaxStore)->Range(4 << 10, 16 << 20);

void BM_OpenClose(benchmark::State& state) {
  Env env;
  (void)env.fs.open("/exists", OpenMode::kTruncate);
  for (auto _ : state) {
    auto f = env.fs.open("/exists", OpenMode::kWrite);
    benchmark::DoNotOptimize(f);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OpenClose);

void BM_CreateRemove(benchmark::State& state) {
  Env env;
  for (auto _ : state) {
    auto f = env.fs.open("/churn", OpenMode::kTruncate);
    env.fs.truncate(f, 64 << 10);
    env.fs.remove("/churn");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CreateRemove);

void BM_DirectoryList(benchmark::State& state) {
  Env env;
  env.fs.mkdir("/d");
  for (int i = 0; i < state.range(0); ++i) {
    (void)env.fs.open("/d/f" + std::to_string(i), OpenMode::kTruncate);
  }
  for (auto _ : state) {
    auto names = env.fs.list("/d");
    benchmark::DoNotOptimize(names);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DirectoryList)->Arg(16)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
