// Structure recovery: which token ranges are function bodies, and what the
// statement/branch shape of each body is.  This is a heuristic C++ "parser"
// — no types, no overload resolution — but it only has to be right about
// shape: braces, statement boundaries, branches, and exits.  Anything it
// cannot classify is treated conservatively (skipped or folded into an
// expression statement), never guessed at.
#include "pmemlint.hpp"

#include <algorithm>
#include <cassert>

namespace pmemlint {

void lex(SourceFile& f);  // lexer.cpp

namespace {

bool is_punct(const Token& t, std::string_view p) {
  return t.kind == Tok::kPunct && t.text == p;
}
bool is_ident(const Token& t, std::string_view id) {
  return t.kind == Tok::kIdent && t.text == id;
}

/// Index of the '}' matching the '{' at @p i (PP tokens never carry braces).
std::size_t match_brace(const std::vector<Token>& ts, std::size_t i) {
  int depth = 0;
  for (std::size_t j = i; j < ts.size(); ++j) {
    if (is_punct(ts[j], "{")) ++depth;
    if (is_punct(ts[j], "}") && --depth == 0) return j;
  }
  return ts.size() - 1;  // unbalanced: clamp to end
}

/// Index just past a balanced "(...)" group starting at @p i (ts[i] == "(").
std::size_t skip_parens(const std::vector<Token>& ts, std::size_t i) {
  int depth = 0;
  for (std::size_t j = i; j < ts.size(); ++j) {
    if (is_punct(ts[j], "(")) ++depth;
    if (is_punct(ts[j], ")") && --depth == 0) return j + 1;
  }
  return ts.size() - 1;
}

// ---------------------------------------------------------------------------
// Function recovery
// ---------------------------------------------------------------------------

/// Scan back from the '{' at @p i to the start of its "header": the previous
/// statement boundary (';', or a '{'/'}' not part of a balanced group inside
/// the header, or a preprocessor token).  Balanced groups — member-init
/// braces, default-argument parens — are stepped over whole.
std::size_t header_start(const std::vector<Token>& ts, std::size_t i) {
  int paren = 0;
  std::size_t j = i;
  while (j > 0) {
    const Token& t = ts[j - 1];
    if (t.kind == Tok::kPP) break;
    if (is_punct(t, ")")) {
      ++paren;
    } else if (is_punct(t, "(")) {
      if (paren == 0) break;  // inside an unbalanced group: barrier
      --paren;
    } else if (paren == 0 && (is_punct(t, ";") || is_punct(t, "{") ||
                              is_punct(t, "}"))) {
      // Statement boundary or an adjacent scope's brace.  (Braced member
      // inits in constructor headers are not stepped over — this repo's
      // style uses paren inits — so a '}' at depth 0 is always a boundary.)
      break;
    }
    --j;
  }
  return j;
}

enum class BraceKind { kNamespace, kType, kFunction, kOther };

struct Classified {
  BraceKind kind;
  std::string fn_name;
  int fn_line = 0;
};

/// Classify the '{' at @p i by its header tokens [h, i).
Classified classify_brace(const std::vector<Token>& ts, std::size_t h,
                          std::size_t i) {
  if (h >= i) return {BraceKind::kOther, {}, 0};

  bool has_eq = false, has_namespace = false, has_extern_str = false;
  bool has_type_kw = false;
  int paren = 0;
  // First pass: top-level markers.
  for (std::size_t j = h; j < i; ++j) {
    const Token& t = ts[j];
    if (is_punct(t, "(")) ++paren;
    if (is_punct(t, ")")) --paren;
    if (paren > 0) continue;
    if (is_punct(t, "=")) has_eq = true;
    if (is_ident(t, "namespace")) has_namespace = true;
    if (is_ident(t, "extern") && j + 1 < i && ts[j + 1].kind == Tok::kString)
      has_extern_str = true;
    if (is_ident(t, "class") || is_ident(t, "struct") ||
        is_ident(t, "union") || is_ident(t, "enum"))
      has_type_kw = true;
  }
  if (has_namespace || has_extern_str) return {BraceKind::kNamespace, {}, 0};
  if (has_eq) return {BraceKind::kOther, {}, 0};

  // Function candidate: the first top-level `ident (`, or `ident <...> (`
  // (explicit specialization), or `operator<op> (`.
  paren = 0;
  for (std::size_t j = h; j < i; ++j) {
    const Token& t = ts[j];
    if (is_punct(t, "(")) ++paren;
    if (is_punct(t, ")")) --paren;
    if (paren != 0 || t.kind != Tok::kIdent) continue;
    if (is_ident(t, "operator")) {
      // operator==( / operator()( / operator bool( — an `operator` keyword
      // at top level of a brace header is always an operator definition.
      return {BraceKind::kFunction, "operator", t.line};
    }
    std::size_t k = j + 1;
    if (k < i && is_punct(ts[k], "<")) {
      // f<int>(...) — step over one balanced <...>.
      int ang = 0;
      while (k < i) {
        if (is_punct(ts[k], "<")) ++ang;
        if (is_punct(ts[k], ">") && --ang == 0) {
          ++k;
          break;
        }
        if (is_punct(ts[k], ";") || is_punct(ts[k], "(")) break;
        ++k;
      }
    }
    if (k < i && is_punct(ts[k], "(")) {
      std::string name(t.text);
      if (j > h && is_punct(ts[j - 1], "~")) name = "~" + name;
      return {BraceKind::kFunction, std::move(name), t.line};
    }
  }
  if (has_type_kw) return {BraceKind::kType, {}, 0};
  return {BraceKind::kOther, {}, 0};
}

void recover_functions(SourceFile& f) {
  const auto& ts = f.tokens;
  // Context stack of open braces we are *inside* (namespaces/types only;
  // function and other bodies are skipped whole).
  std::vector<std::size_t> open;  // matching '}' indices, for popping
  for (std::size_t i = 0; i < ts.size(); ++i) {
    while (!open.empty() && i > open.back()) open.pop_back();
    if (!is_punct(ts[i], "{")) continue;
    const std::size_t h = header_start(ts, i);
    const Classified c = classify_brace(ts, h, i);
    const std::size_t close = match_brace(ts, i);
    switch (c.kind) {
      case BraceKind::kNamespace:
      case BraceKind::kType:
        open.push_back(close);  // descend
        break;
      case BraceKind::kFunction:
        f.functions.push_back(Function{c.fn_name, c.fn_line, i, close});
        i = close;  // bodies are parsed on demand by parse_block
        break;
      case BraceKind::kOther:
        i = close;
        break;
    }
  }
  std::sort(f.functions.begin(), f.functions.end(),
            [](const Function& a, const Function& b) {
              return a.body_lo < b.body_lo;
            });
}

}  // namespace

const Function* SourceFile::function_at(std::size_t ti) const {
  const Function* best = nullptr;
  for (const auto& fn : functions)
    if (fn.body_lo <= ti && ti <= fn.body_hi) best = &fn;  // last = innermost
  return best;
}

void load_source(SourceFile& f, std::string rel, std::string content) {
  f.rel = std::move(rel);
  f.content = std::move(content);
  lex(f);
  recover_functions(f);
}

// ---------------------------------------------------------------------------
// Statement tree
// ---------------------------------------------------------------------------

namespace {

struct StmtParser {
  const std::vector<Token>& ts;
  std::size_t hi;

  /// Consume one statement starting at @p i; returns (stmt, next index).
  std::pair<Stmt, std::size_t> stmt(std::size_t i) {
    if (i >= hi) return {Stmt{StmtKind::kBlock, i, i, {}}, hi};
    const Token& t = ts[i];

    if (t.kind == Tok::kPP) return {Stmt{StmtKind::kExpr, i, i + 1, {}}, i + 1};

    if (is_punct(t, "{")) {
      const std::size_t close = std::min(match_brace(ts, i), hi);
      Stmt b = parse_range(i + 1, close);
      return {std::move(b), close + 1};
    }
    if (is_punct(t, ";")) return {Stmt{StmtKind::kExpr, i, i, {}}, i + 1};

    if (is_ident(t, "if")) {
      std::size_t j = i + 1;
      if (j < hi && is_ident(ts[j], "constexpr")) ++j;
      std::size_t cond_lo = j, cond_hi = j;
      if (j < hi && is_punct(ts[j], "(")) {
        cond_hi = std::min(skip_parens(ts, j), hi);
        j = cond_hi;
      }
      Stmt node{StmtKind::kIf, cond_lo, cond_hi, {}};
      auto [then_s, after_then] = stmt(j);
      node.children.push_back(std::move(then_s));
      std::size_t k = after_then;
      if (k < hi && is_ident(ts[k], "else")) {
        auto [else_s, after_else] = stmt(k + 1);
        node.children.push_back(std::move(else_s));
        k = after_else;
      }
      return {std::move(node), k};
    }
    if (is_ident(t, "for") || is_ident(t, "while") || is_ident(t, "switch")) {
      std::size_t j = i + 1;
      std::size_t cond_lo = j, cond_hi = j;
      if (j < hi && is_punct(ts[j], "(")) {
        cond_hi = std::min(skip_parens(ts, j), hi);
        j = cond_hi;
      }
      Stmt node{StmtKind::kLoop, cond_lo, cond_hi, {}};
      auto [body, after] = stmt(j);
      node.children.push_back(std::move(body));
      return {std::move(node), after};
    }
    if (is_ident(t, "do")) {
      Stmt node{StmtKind::kLoop, i, i + 1, {}};
      auto [body, after] = stmt(i + 1);
      node.children.push_back(std::move(body));
      std::size_t k = after;
      if (k < hi && is_ident(ts[k], "while")) {
        ++k;
        if (k < hi && is_punct(ts[k], "(")) k = std::min(skip_parens(ts, k), hi);
        if (k < hi && is_punct(ts[k], ";")) ++k;
      }
      return {std::move(node), k};
    }
    if (is_ident(t, "try")) {
      Stmt node{StmtKind::kTry, i, i + 1, {}};
      auto [body, after] = stmt(i + 1);
      node.children.push_back(std::move(body));
      std::size_t k = after;
      while (k < hi && is_ident(ts[k], "catch")) {
        std::size_t j = k + 1;
        if (j < hi && is_punct(ts[j], "(")) j = std::min(skip_parens(ts, j), hi);
        auto [handler, after_h] = stmt(j);
        node.children.push_back(std::move(handler));
        k = after_h;
      }
      return {std::move(node), k};
    }
    if (is_ident(t, "return") || is_ident(t, "co_return")) {
      const std::size_t e = expr_end(i + 1);
      return {Stmt{StmtKind::kReturn, i + 1, e, {}}, e + 1};
    }
    if (is_ident(t, "throw")) {
      const std::size_t e = expr_end(i + 1);
      return {Stmt{StmtKind::kThrow, i + 1, e, {}}, e + 1};
    }
    if ((is_ident(t, "case") || is_ident(t, "default"))) {
      std::size_t j = i + 1;
      while (j < hi && !is_punct(ts[j], ":")) ++j;
      return {Stmt{StmtKind::kExpr, i, j, {}}, j + 1};
    }
    // Plain expression / declaration statement: up to the ';' at depth 0.
    const std::size_t e = expr_end(i);
    return {Stmt{StmtKind::kExpr, i, e, {}}, e + 1};
  }

  /// First ';' at group depth 0 from @p i (balancing (), {}, []).
  std::size_t expr_end(std::size_t i) {
    int paren = 0, brace = 0, brack = 0;
    for (std::size_t j = i; j < hi; ++j) {
      const Token& t = ts[j];
      if (t.kind != Tok::kPunct) continue;
      if (t.text == "(") ++paren;
      else if (t.text == ")") --paren;
      else if (t.text == "{") ++brace;
      else if (t.text == "}") {
        if (brace == 0) return j;  // missing ';' guard: stop at scope close
        --brace;
      } else if (t.text == "[") ++brack;
      else if (t.text == "]") --brack;
      else if (t.text == ";" && paren == 0 && brace == 0 && brack == 0)
        return j;
    }
    return hi;
  }

  Stmt parse_range(std::size_t lo, std::size_t end) {
    Stmt block{StmtKind::kBlock, lo, end, {}};
    const std::size_t save = hi;
    hi = end;
    std::size_t i = lo;
    while (i < end) {
      auto [s, next] = stmt(i);
      block.children.push_back(std::move(s));
      if (next <= i) break;  // defensive: never loop forever
      i = next;
    }
    hi = save;
    return block;
  }
};

}  // namespace

Stmt parse_block(const SourceFile& f, std::size_t lo, std::size_t hi) {
  StmtParser p{f.tokens, hi};
  return p.parse_range(lo, hi);
}

// ---------------------------------------------------------------------------
// Layer map
// ---------------------------------------------------------------------------

namespace {

struct LayerPrefix {
  const char* prefix;
  const char* name;
  int rank;
};

// sim → trace → pmem → obj/fs → engine → core, leaf vocabulary below, app
// facades above.  Exact-file overrides come first: src/engine/{node,open}.cpp
// implement the core-layer node wiring and src/pfs/burst_buffer.cpp
// implements the bb facade; they live where their build targets live, not
// where their layer is.
const LayerPrefix kOverrides[] = {
    {"src/engine/node.cpp", "core", 7},
    {"src/engine/open.cpp", "core", 7},
    {"src/pfs/burst_buffer.cpp", "app", 8},
};

const LayerPrefix kPrefixes[] = {
    {"include/pmemcpy/ft/", "ft", 0},
    {"include/pmemcpy/crc32c.hpp", "util", 0},
    {"include/pmemcpy/sim/", "sim", 1},
    {"src/simtime/", "sim", 1},
    {"include/pmemcpy/trace/", "trace", 2},
    {"src/trace/", "trace", 2},
    {"include/pmemcpy/par/", "par", 2},
    {"src/par/", "par", 2},
    {"include/pmemcpy/pfs/", "pfs", 2},
    {"src/pfs/", "pfs", 2},
    {"include/pmemcpy/check/", "check", 2},
    {"include/pmemcpy/pmem/", "pmem", 3},
    {"src/pmemdev/", "pmem", 3},
    {"include/pmemcpy/fs/", "fs", 4},
    {"src/pmemfs/", "fs", 4},
    {"include/pmemcpy/obj/", "obj", 4},
    {"src/pmemobj/", "obj", 4},
    {"include/pmemcpy/serial/", "serial", 5},
    {"src/serial/", "serial", 5},
    {"include/pmemcpy/engine/", "engine", 6},
    {"src/engine/", "engine", 6},
    {"include/pmemcpy/core/", "core", 7},
    {"include/pmemcpy/pmemcpy.hpp", "core", 7},
    {"include/pmemcpy/pmemcpy.h", "core", 7},
    {"src/core/", "core", 7},
    {"include/pmemcpy/bb/", "app", 8},
    {"include/pmemcpy/workload/", "app", 8},
    {"src/workload/", "app", 8},
    {"include/miniio/", "app", 8},
    {"src/baselines/", "app", 8},
};

}  // namespace

Layer layer_of(std::string_view rel) {
  for (const auto& o : kOverrides)
    if (rel == o.prefix) return {o.name, o.rank};
  for (const auto& p : kPrefixes) {
    const std::string_view pre = p.prefix;
    if (rel.size() >= pre.size() && rel.compare(0, pre.size(), pre) == 0)
      return {p.name, p.rank};
  }
  return {"", -1};  // tests/bench/examples/unknown: unconstrained
}

}  // namespace pmemlint
