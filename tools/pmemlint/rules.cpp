// The typed rule engine: structural ports of the five historical
// scripts/lint.sh rules plus the three analyses the shell could not express
// (flow-sensitive persist paths, chained dropped results, include layering).
//
// Path scoping mirrors the original shell rules exactly; see scripts/lint.sh
// history and DESIGN.md §11 for the rationale of each exemption list.
#include "pmemlint.hpp"

#include <algorithm>
#include <array>
#include <functional>
#include <map>
#include <sstream>

namespace pmemlint {

namespace {

bool is_punct(const Token& t, std::string_view p) {
  return t.kind == Tok::kPunct && t.text == p;
}
bool is_ident(const Token& t, std::string_view id) {
  return t.kind == Tok::kIdent && t.text == id;
}

bool has_prefix(std::string_view s, std::string_view pre) {
  return s.size() >= pre.size() && s.compare(0, pre.size(), pre) == 0;
}

bool any_prefix(std::string_view s, std::initializer_list<const char*> pres) {
  for (const char* p : pres)
    if (has_prefix(s, p)) return true;
  return false;
}

void add_finding(std::vector<Finding>& out, const char* rule,
                 const SourceFile& f, int line, std::string context,
                 std::string message) {
  // Inline suppression: `pmemlint: allow(rule)` on this line or the line
  // above.
  for (int l : {line, line - 1}) {
    auto it = f.allows.find(l);
    if (it != f.allows.end() && it->second.count(rule)) return;
  }
  out.push_back(Finding{rule, f.rel, line, std::move(message),
                        std::move(context), false});
}

/// Enclosing-function context for a token index ("-" outside any function).
std::string fn_context(const SourceFile& f, std::size_t ti) {
  const Function* fn = f.function_at(ti);
  return fn ? fn->name : std::string("-");
}

// ---------------------------------------------------------------------------
// Rule 1 — raw-device: Device::note_write()/raw() confined to storage layers
// ---------------------------------------------------------------------------

void rule_raw_device(const Corpus& corpus, std::vector<Finding>& out) {
  for (const auto& fp : corpus.files) {
    const SourceFile& f = *fp;
    if (!any_prefix(f.rel, {"src/", "include/", "bench/", "examples/"}))
      continue;
    if (any_prefix(f.rel, {"src/pmemdev/", "src/pmemobj/", "src/pmemfs/",
                           "include/pmemcpy/pmem/", "include/pmemcpy/obj/",
                           "include/pmemcpy/fs/"}))
      continue;
    const auto& ts = f.tokens;
    for (std::size_t i = 0; i + 1 < ts.size(); ++i) {
      if (!is_punct(ts[i + 1], "(")) continue;
      const bool member =
          i > 0 && (is_punct(ts[i - 1], ".") || is_punct(ts[i - 1], "->"));
      if (is_ident(ts[i], "note_write") ||
          (member && is_ident(ts[i], "raw"))) {
        add_finding(out, "raw-device", f, ts[i].line, fn_context(f, i),
                    "raw device access (" + std::string(ts[i].text) +
                        ") outside the storage layers bypasses the "
                        "charged/persist-checked transfer path");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule 2 — unregistered-test: every tests/*_test.cpp is in CMakeLists.txt
// ---------------------------------------------------------------------------

void rule_unregistered_test(const Corpus& corpus, std::vector<Finding>& out) {
  if (corpus.tests_cmake.empty()) return;
  // Strip cmake comments, then collect pmemcpy_test(<name> registrations.
  std::set<std::string> registered;
  std::istringstream in(corpus.tests_cmake);
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::size_t p = 0;
    while ((p = line.find("pmemcpy_test(", p)) != std::string::npos) {
      p += 13;
      std::size_t e = p;
      while (e < line.size() && line[e] != ' ' && line[e] != ')') ++e;
      registered.insert(line.substr(p, e - p));
    }
  }
  for (const auto& fp : corpus.files) {
    const SourceFile& f = *fp;
    if (!has_prefix(f.rel, "tests/")) continue;
    const std::string_view base = std::string_view(f.rel).substr(6);
    if (base.find('/') != std::string_view::npos) continue;
    constexpr std::string_view kSuffix = "_test.cpp";
    if (base.size() <= kSuffix.size() ||
        base.compare(base.size() - kSuffix.size(), kSuffix.size(), kSuffix) !=
            0)
      continue;
    const std::string name(base.substr(0, base.size() - 4));  // drop .cpp
    if (!registered.count(name)) {
      add_finding(out, "unregistered-test", f, 1, name,
                  f.rel + " is not registered in tests/CMakeLists.txt and "
                          "silently never runs in CI");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule 3 — container-layering: obj::HashTable / fs::FileSystem stay behind
// the engine
// ---------------------------------------------------------------------------

void rule_container_layering(const Corpus& corpus, std::vector<Finding>& out) {
  for (const auto& fp : corpus.files) {
    const SourceFile& f = *fp;
    if (!any_prefix(f.rel, {"src/", "include/"})) continue;
    if (any_prefix(f.rel,
                   {"src/engine/", "src/pmemobj/", "src/pmemfs/",
                    "src/baselines/", "include/pmemcpy/engine/",
                    "include/pmemcpy/obj/", "include/pmemcpy/fs/"}) ||
        f.rel == "include/pmemcpy/core/node.hpp")
      continue;
    const auto& ts = f.tokens;
    for (std::size_t i = 0; i + 2 < ts.size(); ++i) {
      if (!is_punct(ts[i + 1], "::")) continue;
      const bool ht = is_ident(ts[i], "obj") && is_ident(ts[i + 2], "HashTable");
      const bool fsys =
          is_ident(ts[i], "fs") && is_ident(ts[i + 2], "FileSystem");
      if (ht || fsys) {
        add_finding(out, "container-layering", f, ts[i].line, fn_context(f, i),
                    "container type " + std::string(ts[i].text) + "::" +
                        std::string(ts[i + 2].text) +
                        " named outside the engine/storage layers (go "
                        "through engine::Engine)");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule 4 — raw-clock: sim::ctx().now() confined to the time layers
// ---------------------------------------------------------------------------

void rule_raw_clock(const Corpus& corpus, std::vector<Finding>& out) {
  for (const auto& fp : corpus.files) {
    const SourceFile& f = *fp;
    if (!any_prefix(f.rel, {"src/", "include/", "bench/", "examples/"}))
      continue;
    if (any_prefix(f.rel, {"src/simtime/", "src/trace/", "src/par/",
                           "src/pfs/", "include/pmemcpy/sim/",
                           "include/pmemcpy/trace/"}))
      continue;
    const auto& ts = f.tokens;
    for (std::size_t i = 1; i + 2 < ts.size(); ++i) {
      if (!is_ident(ts[i], "now")) continue;
      if (!is_punct(ts[i - 1], ".") && !is_punct(ts[i - 1], "->")) continue;
      if (!is_punct(ts[i + 1], "(") || !is_punct(ts[i + 2], ")")) continue;
      add_finding(out, "raw-clock", f, ts[i].line, fn_context(f, i),
                  "raw simulated-clock read bypasses trace-span attribution; "
                  "take timestamps from trace spans or a DrainReport");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule 5 — dropped-result: health-probe verdicts must be consumed
// ---------------------------------------------------------------------------

/// [[nodiscard]]-style signature table: probe name -> {min_args, max_args}.
/// Only statement-position calls whose terminal callee matches (by name and
/// arity, through any receiver chain) are findings; arity keeps annotation
/// hooks that share a probe's name (none today, after the publish renames)
/// out of the probe namespace.
struct ProbeSig {
  const char* name;
  int min_args;
  int max_args;
};
constexpr ProbeSig kProbes[] = {
    {"scrub", 0, 0},        // PMEM::scrub, Pool::scrub -> ScrubReport
    {"repair", 0, 0},       // PMEM::repair -> RepairReport
    {"check", 0, 0},        // Pool::check -> CheckReport
    {"check_health", 0, 1}, // PMEM::check_health(comm) -> ft::Health
    {"quarantine", 1, 2},   // Pool/Engine::quarantine -> ft::Status / bool
    {"publish", 0, 3},      // HashTable::Inserter::publish -> bool
};

/// Match the '(' of the call closing at token @p close (ts[close] == ")").
std::size_t open_of(const std::vector<Token>& ts, std::size_t close) {
  int depth = 0;
  for (std::size_t j = close + 1; j-- > 0;) {
    if (is_punct(ts[j], ")")) ++depth;
    if (is_punct(ts[j], "(") && --depth == 0) return j;
  }
  return close;
}

int call_arity(const std::vector<Token>& ts, std::size_t open,
               std::size_t close) {
  if (open + 1 == close) return 0;
  int commas = 0, paren = 0, brace = 0, brack = 0;
  for (std::size_t j = open + 1; j < close; ++j) {
    const Token& t = ts[j];
    if (t.kind != Tok::kPunct) continue;
    if (t.text == "(") ++paren;
    else if (t.text == ")") --paren;
    else if (t.text == "{") ++brace;
    else if (t.text == "}") --brace;
    else if (t.text == "[") ++brack;
    else if (t.text == "]") --brack;
    else if (t.text == "," && paren == 0 && brace == 0 && brack == 0) ++commas;
  }
  return commas + 1;
}

void scan_discards(const SourceFile& f, const Stmt& s, const Function& fn,
                   std::vector<Finding>& out) {
  for (const auto& c : s.children) scan_discards(f, c, fn, out);
  if (s.kind != StmtKind::kExpr || s.lo >= s.hi) return;
  const auto& ts = f.tokens;
  // Explicit discard or a binding consumes the result.
  if (is_punct(ts[s.lo], "(") && s.lo + 2 < s.hi &&
      is_ident(ts[s.lo + 1], "void") && is_punct(ts[s.lo + 2], ")"))
    return;
  int paren = 0, brace = 0, brack = 0;
  for (std::size_t j = s.lo; j < s.hi; ++j) {
    const Token& t = ts[j];
    if (t.kind != Tok::kPunct) continue;
    if (t.text == "(") ++paren;
    else if (t.text == ")") --paren;
    else if (t.text == "{") ++brace;
    else if (t.text == "}") --brace;
    else if (t.text == "[") ++brack;
    else if (t.text == "]") --brack;
    else if (paren == 0 && brace == 0 && brack == 0 &&
             (t.text == "=" || t.text == "+=" || t.text == "-=" ||
              t.text == "*=" || t.text == "/=" || t.text == "%=" ||
              t.text == "&=" || t.text == "|=" || t.text == "^=" ||
              t.text == "<<=" || t.text == ">>="))
      return;  // assigned somewhere: consumed
  }
  // Terminal call of the statement.
  if (!is_punct(ts[s.hi - 1], ")")) return;
  const std::size_t open = open_of(ts, s.hi - 1);
  if (open == s.hi - 1 || open == 0) return;
  const Token& callee = ts[open - 1];
  if (callee.kind != Tok::kIdent) return;
  const bool member = open >= 2 && (is_punct(ts[open - 2], ".") ||
                                    is_punct(ts[open - 2], "->"));
  if (!member) return;  // the probes are all member functions
  const int arity = call_arity(ts, open, s.hi - 1);
  for (const ProbeSig& p : kProbes) {
    if (callee.text != p.name || arity < p.min_args || arity > p.max_args)
      continue;
    add_finding(out, "dropped-result", f, callee.line, fn.name,
                "result of health probe " + std::string(callee.text) +
                    "() is discarded; bind it (or `(void)` it to make the "
                    "intent explicit)");
    return;
  }
}

void rule_dropped_result(const Corpus& corpus, std::vector<Finding>& out) {
  for (const auto& fp : corpus.files) {
    const SourceFile& f = *fp;
    if (!any_prefix(f.rel,
                    {"src/", "include/", "bench/", "examples/", "tests/"}))
      continue;
    for (const Function& fn : f.functions) {
      const Stmt body = parse_block(f, fn.body_lo + 1, fn.body_hi);
      scan_discards(f, body, fn, out);
    }
  }
}

// ---------------------------------------------------------------------------
// Rule 6 — unpersisted-return: flow-sensitive persist-path check
// ---------------------------------------------------------------------------

/// Store vocabulary (dirties persistent state) and persist vocabulary
/// (makes it durable / hands durability off).  The device layer itself is
/// out of scope — it *implements* these ops.
constexpr const char* kWriteOps[] = {"store", "note_write"};
constexpr const char* kPersistOps[] = {"persist", "flush",  "drain",
                                       "fsync",   "publish", "check_publish",
                                       "publish_group"};

bool in_list(std::string_view name, const char* const* lst, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    if (name == lst[i]) return true;
  return false;
}
bool is_write_op(std::string_view s) {
  return in_list(s, kWriteOps, std::size(kWriteOps));
}
bool is_persist_op(std::string_view s) {
  return in_list(s, kPersistOps, std::size(kPersistOps));
}

/// Functions that are themselves store primitives or persist primitives
/// forward durability to their callers and must not self-flag (Pool::write
/// and Pool::store wrap dev_->note_write by design).  mag_mark_owned is the
/// magazine layer's sanctioned deferred-persist store (DESIGN.md §14): it
/// rewrites one chunk header as a raw tracked store and its batch callers
/// (refill/sweep) own the single coalesced flush+fence over all K headers —
/// the same split direct_write_span is baselined for, but narrow enough to
/// allow by name.
bool is_primitive_name(std::string_view s) {
  return is_write_op(s) || is_persist_op(s) || s == "write" || s == "fill" ||
         s == "mag_mark_owned";
}

/// `x.store(v, std::memory_order_*)` is a DRAM atomic, not a pmem store:
/// the memory-order argument is the give-away (no pmem write op takes
/// one).  Scan the argument list, nesting-aware, for such an identifier.
bool is_dram_atomic_store(const SourceFile& f, std::size_t i) {
  const auto& ts = f.tokens;
  if (ts[i].text != "store") return false;
  int depth = 0;
  for (std::size_t j = i + 1; j < ts.size(); ++j) {
    if (ts[j].kind == Tok::kPunct) {
      if (ts[j].text == "(") ++depth;
      if (ts[j].text == ")" && --depth == 0) break;
    }
    if (ts[j].kind == Tok::kIdent &&
        ts[j].text.rfind("memory_order", 0) == 0) {
      return true;
    }
  }
  return false;
}

/// Abstract state: clean, or dirty since `first_write_line`.
struct PState {
  bool dirty = false;
  int first_write_line = 0;
  bool operator<(const PState& o) const {
    return std::tie(dirty, first_write_line) <
           std::tie(o.dirty, o.first_write_line);
  }
};
using PStates = std::set<PState>;

struct PersistAnalysis {
  const SourceFile& f;
  /// Corpus-wide summaries: function name -> every definition of that name
  /// persists on all normal exits (so a call to it counts as a persist op).
  const std::map<std::string, bool>& persists_by_name;
  PStates exits;  ///< states at normal exits (returns + fall-through)

  /// Apply the calls in token span [lo, hi) left-to-right.
  PStates apply_span(std::size_t lo, std::size_t hi, PStates in) const {
    const auto& ts = f.tokens;
    for (std::size_t i = lo; i < hi; ++i) {
      if (ts[i].kind != Tok::kIdent || i + 1 >= ts.size() ||
          !is_punct(ts[i + 1], "("))
        continue;
      const std::string_view name = ts[i].text;
      bool persist = is_persist_op(name);
      if (!persist) {
        auto it = persists_by_name.find(std::string(name));
        persist = it != persists_by_name.end() && it->second;
      }
      if (persist) {
        in = PStates{PState{false, 0}};
      } else if (is_write_op(name) && !is_dram_atomic_store(f, i)) {
        PStates next;
        for (const PState& s : in)
          next.insert(PState{true, s.dirty ? s.first_write_line
                                           : ts[i].line});
        in = std::move(next);
      }
    }
    return in;
  }

  PStates eval(const Stmt& s, PStates in) {
    switch (s.kind) {
      case StmtKind::kBlock: {
        for (const auto& c : s.children) in = eval(c, in);
        return in;
      }
      case StmtKind::kExpr:
        return apply_span(s.lo, s.hi, std::move(in));
      case StmtKind::kReturn: {
        in = apply_span(s.lo, s.hi, std::move(in));
        exits.insert(in.begin(), in.end());
        return PStates{};  // no fall-through
      }
      case StmtKind::kThrow:
        // Exceptional exit: the persist-path contract covers normal
        // returns; abort paths are the crash harness's job.
        apply_span(s.lo, s.hi, std::move(in));
        return PStates{};
      case StmtKind::kIf: {
        in = apply_span(s.lo, s.hi, std::move(in));  // condition
        PStates out = eval(s.children[0], in);
        if (s.children.size() > 1) {
          PStates e = eval(s.children[1], in);
          out.insert(e.begin(), e.end());
        } else {
          out.insert(in.begin(), in.end());
        }
        return out;
      }
      case StmtKind::kLoop: {
        in = apply_span(s.lo, s.hi, std::move(in));  // header
        PStates all = in;
        for (int iter = 0; iter < 4; ++iter) {  // tiny lattice: fast fixpoint
          PStates out = eval(s.children[0], all);
          const std::size_t before = all.size();
          all.insert(out.begin(), out.end());
          if (all.size() == before) break;
        }
        return all;
      }
      case StmtKind::kTry: {
        PStates body = eval(s.children[0], in);
        PStates all = body;
        // A handler can be entered from any point in the body: entry state
        // is approximated as entry ∪ body-exit.
        PStates handler_in = in;
        handler_in.insert(body.begin(), body.end());
        for (std::size_t c = 1; c < s.children.size(); ++c) {
          PStates h = eval(s.children[c], handler_in);
          all.insert(h.begin(), h.end());
        }
        return all;
      }
    }
    return in;
  }
};

/// True when every normal exit of @p fn is clean assuming a clean entry
/// (used both for flagging and for the one-level call summaries).
struct FnPersistResult {
  bool stores = false;         ///< body contains a write op at all
  bool clean_exits = true;     ///< no normal exit is dirty
  PState worst;                ///< a dirty exit state, when any
};

FnPersistResult analyze_fn(const SourceFile& f, const Function& fn,
                           const std::map<std::string, bool>& summaries) {
  FnPersistResult r;
  for (std::size_t i = fn.body_lo; i < fn.body_hi; ++i)
    if (f.tokens[i].kind == Tok::kIdent && is_write_op(f.tokens[i].text) &&
        i + 1 < f.tokens.size() && is_punct(f.tokens[i + 1], "(") &&
        !is_dram_atomic_store(f, i))
      r.stores = true;
  if (!r.stores) return r;

  PersistAnalysis pa{f, summaries, {}};
  const Stmt body = parse_block(f, fn.body_lo + 1, fn.body_hi);
  PStates fall = pa.eval(body, PStates{PState{false, 0}});
  pa.exits.insert(fall.begin(), fall.end());
  for (const PState& s : pa.exits)
    if (s.dirty) {
      r.clean_exits = false;
      r.worst = s;
      break;
    }
  return r;
}

void rule_unpersisted_return(const Corpus& corpus, std::vector<Finding>& out) {
  // Pass 1: one-level call summaries over the whole corpus — a function
  // name maps to true only if every definition of that name both stores
  // and persists before every normal exit (e.g. tree_finalize), so calling
  // it counts as persisting.  Ambiguous names stay false (conservative).
  std::map<std::string, bool> summaries;
  const std::map<std::string, bool> empty;
  for (const auto& fp : corpus.files) {
    for (const Function& fn : fp->functions) {
      if (is_primitive_name(fn.name)) continue;
      const FnPersistResult r = analyze_fn(*fp, fn, empty);
      const bool qualifies = r.stores && r.clean_exits;
      auto [it, inserted] = summaries.emplace(fn.name, qualifies);
      if (!inserted) it->second = it->second && qualifies;
    }
  }

  // Pass 2: flag storage-layer functions with a dirty normal exit.
  for (const auto& fp : corpus.files) {
    const SourceFile& f = *fp;
    const Layer layer = layer_of(f.rel);
    if (layer.name != "obj" && layer.name != "fs" && layer.name != "engine")
      continue;
    for (const Function& fn : f.functions) {
      // The store primitives themselves forward to the device and must not
      // self-flag (their callers own the flush).
      if (is_primitive_name(fn.name)) continue;
      const FnPersistResult r = analyze_fn(f, fn, summaries);
      if (!r.stores || r.clean_exits) continue;
      add_finding(out, "unpersisted-return", f, r.worst.first_write_line,
                  fn.name,
                  "store in '" + fn.name +
                      "' can reach a return with no flush/fence/publish on "
                      "some path (static persist-path check)");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule 7 — include-layering: the header DAG must respect
// sim → trace → pmem → obj/fs → engine → core
// ---------------------------------------------------------------------------

struct Include {
  std::string target;  ///< repo-relative resolved path
  int line;
};

std::vector<Include> includes_of(const SourceFile& f) {
  std::vector<Include> out;
  for (const Token& t : f.tokens) {
    if (t.kind != Tok::kPP) continue;
    std::string_view s = t.text;
    std::size_t p = s.find_first_not_of(" \t", 1);  // past '#'
    if (p == std::string_view::npos ||
        s.compare(p, 7, "include") != 0)
      continue;
    p = s.find_first_not_of(" \t", p + 7);
    if (p == std::string_view::npos) continue;
    if (s[p] == '<') {
      const std::size_t e = s.find('>', p + 1);
      if (e == std::string_view::npos) continue;
      const std::string_view inner = s.substr(p + 1, e - p - 1);
      if (has_prefix(inner, "pmemcpy/") || has_prefix(inner, "miniio/"))
        out.push_back(Include{"include/" + std::string(inner), t.line});
    } else if (s[p] == '"') {
      const std::size_t e = s.find('"', p + 1);
      if (e == std::string_view::npos) continue;
      const std::string_view inner = s.substr(p + 1, e - p - 1);
      // Resolve relative to the including file's directory.
      const std::size_t slash = f.rel.rfind('/');
      const std::string dir =
          slash == std::string::npos ? "" : f.rel.substr(0, slash + 1);
      out.push_back(Include{dir + std::string(inner), t.line});
    }
  }
  return out;
}

void rule_include_layering(const Corpus& corpus, std::vector<Finding>& out) {
  // Inverted edges.
  for (const auto& fp : corpus.files) {
    const SourceFile& f = *fp;
    const Layer from = layer_of(f.rel);
    if (from.rank < 0) continue;  // tests/bench/examples: unconstrained
    for (const Include& inc : includes_of(f)) {
      const Layer to = layer_of(inc.target);
      if (to.rank < 0) continue;
      if (to.rank > from.rank && to.name != from.name) {
        add_finding(out, "include-layering", f, inc.line, inc.target,
                    "layer '" + from.name + "' (rank " +
                        std::to_string(from.rank) + ") includes '" +
                        inc.target + "' from higher layer '" + to.name +
                        "' (rank " + std::to_string(to.rank) +
                        "): inverts sim->trace->pmem->obj/fs->engine->core");
      }
    }
  }
  // Cycles in the header dependency DAG (include/ files only).
  std::map<std::string, std::vector<std::string>> graph;
  std::map<std::string, int> line_of;
  for (const auto& fp : corpus.files) {
    if (!has_prefix(fp->rel, "include/")) continue;
    for (const Include& inc : includes_of(*fp)) {
      if (!has_prefix(inc.target, "include/")) continue;
      graph[fp->rel].push_back(inc.target);
      line_of[fp->rel + "->" + inc.target] = inc.line;
    }
  }
  std::map<std::string, int> color;  // 0 new, 1 open, 2 done
  std::vector<std::string> stack;
  std::function<void(const std::string&)> dfs = [&](const std::string& u) {
    color[u] = 1;
    stack.push_back(u);
    for (const auto& v : graph[u]) {
      if (color[v] == 1) {
        // Found a cycle: v ... u -> v.  Report once, on u's include of v.
        const SourceFile* f = corpus.find(u);
        if (f != nullptr) {
          std::string path = v;
          for (auto it = std::find(stack.begin(), stack.end(), v);
               it != stack.end(); ++it)
            if (*it != v) path += " -> " + *it;
          add_finding(out, "include-layering", *f,
                      line_of[u + "->" + v], v,
                      "header include cycle: " + path + " -> " + v);
        }
      } else if (color[v] == 0) {
        dfs(v);
      }
    }
    stack.pop_back();
    color[u] = 2;
  };
  for (const auto& [u, _] : graph)
    if (color[u] == 0) dfs(u);
}

}  // namespace

// ---------------------------------------------------------------------------
// Engine plumbing
// ---------------------------------------------------------------------------

const std::vector<RuleInfo>& rules() {
  static const std::vector<RuleInfo> kRules = {
      {"raw-device",
       "Device::note_write()/raw() stay inside the storage layers"},
      {"unregistered-test",
       "every tests/*_test.cpp is registered in tests/CMakeLists.txt"},
      {"container-layering",
       "obj::HashTable / fs::FileSystem are engine implementation details"},
      {"raw-clock", "sim clock reads stay inside the sim/trace layers"},
      {"dropped-result",
       "health-probe verdicts (signature table) are never silently dropped"},
      {"unpersisted-return",
       "storage-layer stores are flushed/fenced/published on every path"},
      {"include-layering",
       "the header DAG respects sim->trace->pmem->obj/fs->engine->core"},
  };
  return kRules;
}

SourceFile& Corpus::add(std::string rel, std::string content) {
  files.push_back(std::make_unique<SourceFile>());
  load_source(*files.back(), std::move(rel), std::move(content));
  return *files.back();
}

const SourceFile* Corpus::find(std::string_view rel) const {
  for (const auto& f : files)
    if (f->rel == rel) return f.get();
  return nullptr;
}

std::vector<Finding> run_rules(const Corpus& corpus) {
  std::vector<Finding> out;
  rule_raw_device(corpus, out);
  rule_unregistered_test(corpus, out);
  rule_container_layering(corpus, out);
  rule_raw_clock(corpus, out);
  rule_dropped_result(corpus, out);
  rule_unpersisted_return(corpus, out);
  rule_include_layering(corpus, out);
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.file, a.line, a.rule) < std::tie(b.file, b.line, b.rule);
  });
  return out;
}

}  // namespace pmemlint
