// pmemlint fixture: a sim-layer header reaching up into the engine layer.
#pragma once

#include <pmemcpy/engine/engine.hpp>
