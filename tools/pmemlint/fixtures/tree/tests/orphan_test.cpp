// pmemlint fixture: a test file never registered in tests/CMakeLists.txt.
#include <gtest/gtest.h>

TEST(Orphan, NeverRuns) { EXPECT_TRUE(true); }
