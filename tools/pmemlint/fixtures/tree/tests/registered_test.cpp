// pmemlint fixture: registered in the fixture CMakeLists — no finding.
#include <gtest/gtest.h>

TEST(Registered, Runs) { EXPECT_TRUE(true); }
