// pmemlint fixture: health-probe verdicts dropped through chained and
// multi-line receivers — the exact class the line-anchored grep missed.

template <typename Node>
void bad_probes(Node& node) {
  node.pool().check();
  node
      .mapping()
      .publish(0, 64);
  (void)node.pool().check();  // explicit discard: not a finding
}
