// pmemlint fixture: raw simulated-clock read outside the sim/trace layers.
// In comments ctx.now() never flags.

template <typename Ctx>
double bad_stamp(Ctx& ctx) {
  return ctx.now();
}
