// pmemlint fixture: raw device access outside the storage layers.
// The historical grep rule caught these; the structural port must too —
// but never inside comments: dev.note_write(0, 64); dev->raw(0);
#include <cstddef>

namespace pmemcpy::core {

template <typename Dev>
void bad_copy(Dev& dev, std::size_t len) {
  dev.note_write(0, len);
  void* p = dev.raw(0);
  (void)p;
  (void)len;
}

}  // namespace pmemcpy::core
