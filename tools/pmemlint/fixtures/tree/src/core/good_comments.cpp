// pmemlint fixture: every forbidden pattern below sits in a comment, a
// string, or a raw string — the analyzer must report nothing in this file.
//   dev.note_write(0, 64);  dev->raw(0);  pmemcpy::obj::HashTable t;
//   ctx.now();  pool.check();  ins.publish();

const char* kOne = "dev.note_write(0, 64); obj::HashTable; ctx.now()";
const char* kTwo = R"(p.store(0, x, 8); return; fs::FileSystem behind)";
/* block: m.quarantine(0, 64); p.scrub(); #include <pmemcpy/engine/engine.hpp> */
