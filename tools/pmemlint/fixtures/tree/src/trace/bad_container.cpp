// pmemlint fixture: naming obj::HashTable outside the engine layers.
// Mentions in comments never flag: obj::HashTable, fs::FileSystem.
namespace pmemcpy { namespace obj { class HashTable; } }

void bad_touch(pmemcpy::obj::HashTable* table);

const char* kDoc = "obj::HashTable in a string is not a finding";
