// pmemlint fixture: stores persisted on every path, probe results consumed,
// and one reviewed suppression via an inline allow pragma.
#include <cstddef>

template <typename Pool, typename Rec>
bool good_put(Pool& p, const Rec& r, bool small) {
  p.store(0, &r, sizeof(r));
  if (small) {
    p.persist(0, sizeof(r));
    return true;
  }
  p.persist(0, sizeof(r));
  const bool ok = p.pool().check().clean;
  (void)p.pool().scrub();
  return ok;
}

template <typename Pool>
void reviewed_stage(Pool& p, const void* src) {
  // pmemlint: allow(unpersisted-return) — staged on purpose; see fixture.
  p.store(0, src, 8);
}
