// pmemlint fixture: a store that can reach a return with no persist on the
// early-return branch (static persist-path rule).
#include <cstddef>

template <typename Pool, typename Rec>
void bad_put(Pool& p, const Rec& r, bool small) {
  p.store(0, &r, sizeof(r));
  if (small) {
    return;  // dirty: the store above is never flushed on this path
  }
  p.persist(0, sizeof(r));
}
