// Tokenizer.  Produces the token stream the structural and flow rules run
// over; comments and literals are consumed here so no rule can ever match
// inside them (the historical grep rules' main false-positive class).
// Comments are scanned for `pmemlint: allow(rule[, rule...])` suppressions
// before being dropped.
#include "pmemlint.hpp"

#include <cctype>
#include <cstring>

namespace pmemlint {

namespace {

/// Multi-character punctuators we must not split ("::" matters to rules;
/// the rest are kept whole so expression scans see sane boundaries).
const char* const kPunct3[] = {"<<=", ">>=", "->*", "...", "<=>"};
const char* const kPunct2[] = {"::", "->", "<<", ">>", "<=", ">=", "==", "!=",
                               "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=",
                               "|=", "^=", "++", "--", ".*", "##"};

bool starts_with(std::string_view s, std::size_t i, const char* p) {
  const std::size_t n = std::strlen(p);
  return s.size() - i >= n && s.compare(i, n, p) == 0;
}

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Record `pmemlint: allow(a, b)` pragmas found in a comment at @p line.
void scan_allow(SourceFile& f, std::string_view comment, int line) {
  constexpr std::string_view kTag = "pmemlint:";
  std::size_t p = comment.find(kTag);
  if (p == std::string_view::npos) return;
  p += kTag.size();
  while (p < comment.size() && comment[p] == ' ') ++p;
  constexpr std::string_view kAllow = "allow(";
  if (comment.compare(p, kAllow.size(), kAllow) != 0) return;
  p += kAllow.size();
  const std::size_t close = comment.find(')', p);
  if (close == std::string_view::npos) return;
  std::string_view list = comment.substr(p, close - p);
  while (!list.empty()) {
    std::size_t comma = list.find(',');
    std::string_view id = list.substr(0, comma);
    while (!id.empty() && id.front() == ' ') id.remove_prefix(1);
    while (!id.empty() && id.back() == ' ') id.remove_suffix(1);
    if (!id.empty()) f.allows[line].insert(std::string(id));
    if (comma == std::string_view::npos) break;
    list.remove_prefix(comma + 1);
  }
}

}  // namespace

void lex(SourceFile& f) {
  const std::string_view s = f.content;
  std::size_t i = 0;
  int line = 1;
  auto push = [&](Tok k, std::size_t lo, std::size_t hi, int ln) {
    f.tokens.push_back(Token{k, s.substr(lo, hi - lo), ln});
  };

  while (i < s.size()) {
    const char c = s[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      ++i;
      continue;
    }
    // Line comment.
    if (starts_with(s, i, "//")) {
      std::size_t e = s.find('\n', i);
      if (e == std::string_view::npos) e = s.size();
      scan_allow(f, s.substr(i, e - i), line);
      i = e;
      continue;
    }
    // Block comment.
    if (starts_with(s, i, "/*")) {
      const int start_line = line;
      std::size_t e = s.find("*/", i + 2);
      if (e == std::string_view::npos) e = s.size();
      for (std::size_t j = i; j < e; ++j)
        if (s[j] == '\n') ++line;
      scan_allow(f, s.substr(i, e - i), start_line);
      i = (e == s.size()) ? e : e + 2;
      continue;
    }
    // Preprocessor directive: only when '#' starts the logical line.  Keep
    // the whole directive (with continuations joined) as one token.
    if (c == '#') {
      std::size_t back = i;
      bool at_line_start = true;
      while (back > 0) {
        const char b = s[--back];
        if (b == '\n') break;
        if (b != ' ' && b != '\t' && b != '\r') {
          at_line_start = false;
          break;
        }
      }
      if (at_line_start) {
        const int start_line = line;
        std::size_t e = i;
        while (e < s.size()) {
          if (s[e] == '\n') {
            if (e > i && s[e - 1] == '\\') {
              ++line;
              ++e;
              continue;
            }
            break;
          }
          ++e;
        }
        push(Tok::kPP, i, e, start_line);
        i = e;
        continue;
      }
      // '#' mid-line (stringize inside a macro body): plain punct.
    }
    // Raw string literal (optionally with encoding prefix).
    {
      std::size_t j = i;
      if (ident_start(c)) {
        // u8R"( / uR / UR / LR prefixes.
        std::size_t k = i;
        while (k < s.size() && ident_char(s[k])) ++k;
        if (k < s.size() && s[k] == '"' && s[k - 1] == 'R' && k - i <= 3) {
          j = k;  // points at '"'
        }
      }
      if ((s[i] == 'R' && i + 1 < s.size() && s[i + 1] == '"') ||
          (j != i && s[j] == '"')) {
        const std::size_t q = (j != i) ? j : i + 1;  // the '"'
        std::size_t d = q + 1;
        while (d < s.size() && s[d] != '(' && s[d] != '"' && s[d] != '\n') ++d;
        if (d < s.size() && s[d] == '(') {
          std::string delim = ")" + std::string(s.substr(q + 1, d - q - 1)) +
                              "\"";
          std::size_t e = s.find(delim, d + 1);
          if (e == std::string_view::npos)
            e = s.size();
          else
            e += delim.size();
          const int start_line = line;
          for (std::size_t t = i; t < e && t < s.size(); ++t)
            if (s[t] == '\n') ++line;
          push(Tok::kString, i, e, start_line);
          i = e;
          continue;
        }
      }
    }
    // String / char literal (with optional u8/u/U/L prefix handled by the
    // identifier path falling through: an identifier immediately followed by
    // a quote is re-lexed here).
    if (c == '"' || c == '\'') {
      const char quote = c;
      const int start_line = line;
      std::size_t e = i + 1;
      while (e < s.size()) {
        if (s[e] == '\\' && e + 1 < s.size()) {
          e += 2;
          continue;
        }
        if (s[e] == quote) {
          ++e;
          break;
        }
        if (s[e] == '\n') ++line;  // unterminated; be forgiving
        ++e;
      }
      push(quote == '"' ? Tok::kString : Tok::kChar, i, e, start_line);
      i = e;
      continue;
    }
    // Identifier / keyword (possibly a literal prefix).
    if (ident_start(c)) {
      std::size_t e = i + 1;
      while (e < s.size() && ident_char(s[e])) ++e;
      if (e < s.size() && (s[e] == '"' || s[e] == '\'') && e - i <= 2) {
        // u8"...", L'...': fold the prefix into the literal by restarting
        // the literal path from the prefix.
        const char quote = s[e];
        std::size_t q = e + 1;
        while (q < s.size()) {
          if (s[q] == '\\' && q + 1 < s.size()) {
            q += 2;
            continue;
          }
          if (s[q] == quote) {
            ++q;
            break;
          }
          if (s[q] == '\n') ++line;
          ++q;
        }
        push(quote == '"' ? Tok::kString : Tok::kChar, i, q, line);
        i = q;
        continue;
      }
      push(Tok::kIdent, i, e, line);
      i = e;
      continue;
    }
    // Number (pp-number: digits, idents, quotes-as-separators, exponent
    // signs, dots).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < s.size() &&
         std::isdigit(static_cast<unsigned char>(s[i + 1])))) {
      std::size_t e = i + 1;
      while (e < s.size()) {
        const char n = s[e];
        if (ident_char(n) || n == '.') {
          ++e;
          continue;
        }
        if (n == '\'' && e + 1 < s.size() && ident_char(s[e + 1])) {
          e += 2;
          continue;
        }
        if ((n == '+' || n == '-') && (s[e - 1] == 'e' || s[e - 1] == 'E' ||
                                       s[e - 1] == 'p' || s[e - 1] == 'P')) {
          ++e;
          continue;
        }
        break;
      }
      push(Tok::kNumber, i, e, line);
      i = e;
      continue;
    }
    // Punctuation, longest match first.
    {
      std::size_t n = 1;
      for (const char* p : kPunct3)
        if (starts_with(s, i, p)) n = 3;
      if (n == 1)
        for (const char* p : kPunct2)
          if (starts_with(s, i, p)) n = 2;
      push(Tok::kPunct, i, i + n, line);
      i += n;
      continue;
    }
  }
  f.tokens.push_back(Token{Tok::kEnd, std::string_view(), line});
}

}  // namespace pmemlint
