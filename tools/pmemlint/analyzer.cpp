// Baseline parsing/matching and report emission (human + JSON).
#include "pmemlint.hpp"

#include <cstdio>
#include <sstream>

namespace pmemlint {

namespace {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::vector<BaselineEntry> parse_baseline(const std::string& content) {
  std::vector<BaselineEntry> out;
  std::istringstream in(content);
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    BaselineEntry e;
    if (fields >> e.rule >> e.file >> e.context) out.push_back(std::move(e));
  }
  return out;
}

std::size_t apply_baseline(std::vector<Finding>& findings,
                           std::vector<BaselineEntry>& baseline) {
  std::size_t live = 0;
  for (Finding& f : findings) {
    for (BaselineEntry& e : baseline) {
      const std::string ctx = f.context.empty() ? "-" : f.context;
      if (e.rule == f.rule && e.file == f.file && e.context == ctx) {
        f.baselined = true;
        e.used = true;
        break;
      }
    }
    if (!f.baselined) ++live;
  }
  return live;
}

std::string to_json(const std::vector<Finding>& findings,
                    const std::vector<BaselineEntry>& baseline) {
  std::ostringstream out;
  std::size_t live = 0, suppressed = 0;
  for (const Finding& f : findings) (f.baselined ? suppressed : live)++;
  out << "{\n  \"tool\": \"pmemlint\",\n  \"version\": 1,\n";
  out << "  \"summary\": {\"findings\": " << live
      << ", \"baselined\": " << suppressed << "},\n";
  out << "  \"rules\": [\n";
  const auto& rs = rules();
  for (std::size_t i = 0; i < rs.size(); ++i) {
    out << "    {\"id\": \"" << rs[i].id << "\", \"summary\": \""
        << json_escape(rs[i].summary) << "\"}"
        << (i + 1 < rs.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"findings\": [\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out << "    {\"rule\": \"" << json_escape(f.rule) << "\", \"file\": \""
        << json_escape(f.file) << "\", \"line\": " << f.line
        << ", \"context\": \"" << json_escape(f.context)
        << "\", \"baselined\": " << (f.baselined ? "true" : "false")
        << ", \"message\": \"" << json_escape(f.message) << "\"}"
        << (i + 1 < findings.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"stale_baseline\": [\n";
  std::vector<const BaselineEntry*> stale;
  for (const BaselineEntry& e : baseline)
    if (!e.used) stale.push_back(&e);
  for (std::size_t i = 0; i < stale.size(); ++i) {
    out << "    {\"rule\": \"" << json_escape(stale[i]->rule)
        << "\", \"file\": \"" << json_escape(stale[i]->file)
        << "\", \"context\": \"" << json_escape(stale[i]->context) << "\"}"
        << (i + 1 < stale.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.str();
}

std::string to_human(const std::vector<Finding>& findings) {
  std::ostringstream out;
  for (const Finding& f : findings) {
    out << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message;
    if (f.context != "-" && !f.context.empty())
      out << " (in " << f.context << ")";
    if (f.baselined) out << " [baselined]";
    out << "\n";
  }
  return out.str();
}

}  // namespace pmemlint
