// pmemlint — in-tree flow-sensitive static analyzer for persist-path and
// layering bugs (DESIGN.md §11).
//
// The pipeline is deliberately simple and dependency-free:
//
//   1. Lexer (lexer.cpp) — a real C++ tokenizer: comments (which may carry
//      `pmemlint: allow(rule)` suppressions), string/char literals, raw
//      strings, preprocessor lines (kept whole, for the include rules),
//      identifiers, numbers, punctuation.  Rules never see into comments or
//      literals, which kills the grep rules' false-positive class outright.
//   2. Structure recovery (structure.cpp) — per-file function discovery
//      (namespace/class/function brace classification) and, per function,
//      a statement/branch tree: blocks, if/else, loops, switch, try/catch,
//      return/throw, expression statements.  No type checking; just enough
//      shape for flow-sensitive rules.
//   3. Rule engine (rules.cpp) — typed rules over the corpus.  Structural
//      ports of the five historical scripts/lint.sh rules plus the
//      flow-sensitive ones the shell could not express (unpersisted-return,
//      dropped-result over chained/temporary calls, include layering).
//
// Findings carry file:line provenance and a stable suppression key
// (rule + file + enclosing-function/context) matched against a checked-in
// baseline file, so legitimate idioms (e.g. deferred-persist staging) are
// suppressed explicitly and visibly rather than by weakening the rule.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace pmemlint {

// ---------------------------------------------------------------------------
// Tokens
// ---------------------------------------------------------------------------

enum class Tok : std::uint8_t {
  kIdent,   ///< identifier or keyword
  kNumber,  ///< numeric literal (pp-number)
  kString,  ///< "..." or R"(...)" (text excludes quotes' content details)
  kChar,    ///< '...'
  kPunct,   ///< operator / punctuator ("::", "->", "{", ...)
  kPP,      ///< one whole preprocessor directive (continuations joined)
  kEnd,
};

struct Token {
  Tok kind;
  std::string_view text;  ///< view into SourceFile::content
  int line;               ///< 1-based
};

// ---------------------------------------------------------------------------
// Files and recovered structure
// ---------------------------------------------------------------------------

/// One recovered function definition (free function, method, TEST body...).
struct Function {
  std::string name;     ///< unqualified name ("publish", "TEST", "~Pool")
  int line;             ///< line of the signature's opening identifier
  std::size_t body_lo;  ///< token index of the '{' opening the body
  std::size_t body_hi;  ///< token index of the matching '}'
};

struct SourceFile {
  std::string rel;      ///< path relative to the analysis root ("src/x.cpp")
  std::string content;  ///< owned; tokens view into this
  std::vector<Token> tokens;
  std::vector<Function> functions;
  /// Lines carrying a `pmemlint: allow(rule[, rule...])` comment.  A pragma
  /// suppresses matching findings on its own line and the following line.
  std::map<int, std::set<std::string>> allows;

  SourceFile() = default;
  SourceFile(const SourceFile&) = delete;
  SourceFile& operator=(const SourceFile&) = delete;

  /// Innermost recovered function containing token index @p ti, or nullptr.
  [[nodiscard]] const Function* function_at(std::size_t ti) const;
};

// ---------------------------------------------------------------------------
// Statement tree (built on demand per function body by structure.cpp)
// ---------------------------------------------------------------------------

enum class StmtKind : std::uint8_t {
  kBlock,   ///< { children }
  kIf,      ///< children = {then[, else]}
  kLoop,    ///< for/while/do/switch body: runs zero or more times
  kTry,     ///< children = {body, catch...}; catches see any body state
  kReturn,  ///< normal exit
  kThrow,   ///< exceptional exit (not flagged by the persist-path rule)
  kExpr,    ///< plain expression/declaration statement: tokens [lo, hi)
};

struct Stmt {
  StmtKind kind;
  std::size_t lo = 0;  ///< token range [lo, hi) of the statement head/expr
  std::size_t hi = 0;
  std::vector<Stmt> children;
};

/// Parse the token range (body_lo, body_hi) — exclusive of the braces —
/// into a statement tree.
[[nodiscard]] Stmt parse_block(const SourceFile& f, std::size_t lo,
                               std::size_t hi);

// ---------------------------------------------------------------------------
// Lexing / loading
// ---------------------------------------------------------------------------

/// Tokenize @p content into @p f (fills content, tokens, allows, functions).
void load_source(SourceFile& f, std::string rel, std::string content);

// ---------------------------------------------------------------------------
// Layer map (include-layering + persist-path scoping)
// ---------------------------------------------------------------------------

/// sim → trace → pmem → obj/fs → engine → core, with the leaf vocabulary
/// below and the app facades above.  rank() of an includer must be >= the
/// rank of anything it includes unless both map to the same layer.
struct Layer {
  std::string name;  ///< "obj", "engine", ... empty = unconstrained
  int rank = -1;     ///< -1 = unconstrained (tests/bench/examples/unknown)
};

/// Layer of a repo-relative path ("src/pmemobj/pool.cpp",
/// "pmemcpy/obj/pool.hpp" include targets are resolved by the caller to
/// "include/pmemcpy/obj/pool.hpp" first).
[[nodiscard]] Layer layer_of(std::string_view rel);

// ---------------------------------------------------------------------------
// Findings / rule engine
// ---------------------------------------------------------------------------

struct Finding {
  std::string rule;     ///< stable rule id ("dropped-result", ...)
  std::string file;     ///< repo-relative path
  int line = 0;
  std::string message;
  /// Third field of the suppression key: the enclosing function name, or a
  /// rule-specific stable context for file-level findings.
  std::string context;
  bool baselined = false;

  [[nodiscard]] std::string key() const {
    return rule + " " + file + " " + (context.empty() ? "-" : context);
  }
};

struct RuleInfo {
  const char* id;
  const char* summary;
};

/// The seven rules, in reporting order.
[[nodiscard]] const std::vector<RuleInfo>& rules();

struct Corpus {
  std::vector<std::unique_ptr<SourceFile>> files;
  /// tests/CMakeLists.txt content (for the test-registration rule); empty
  /// when not provided.
  std::string tests_cmake;

  SourceFile& add(std::string rel, std::string content);
  [[nodiscard]] const SourceFile* find(std::string_view rel) const;
};

/// Run every rule over the corpus.  Findings are sorted by file, line, rule.
[[nodiscard]] std::vector<Finding> run_rules(const Corpus& corpus);

// ---------------------------------------------------------------------------
// Baseline
// ---------------------------------------------------------------------------

/// One parsed baseline entry: `rule file context  # note`.
struct BaselineEntry {
  std::string rule;
  std::string file;
  std::string context;
  bool used = false;
};

/// Parse a baseline file's content (comments: `#` to end of line).
[[nodiscard]] std::vector<BaselineEntry> parse_baseline(
    const std::string& content);

/// Mark findings matching a baseline entry (rule+file+context) and mark the
/// entries used.  Returns the number of non-baselined findings.
std::size_t apply_baseline(std::vector<Finding>& findings,
                           std::vector<BaselineEntry>& baseline);

// ---------------------------------------------------------------------------
// Reports
// ---------------------------------------------------------------------------

/// Machine-readable report (one JSON object; schema in DESIGN.md §11).
[[nodiscard]] std::string to_json(const std::vector<Finding>& findings,
                                  const std::vector<BaselineEntry>& baseline);

/// Human lines: "file:line: [rule] message" (+ "(baselined)" markers).
[[nodiscard]] std::string to_human(const std::vector<Finding>& findings);

}  // namespace pmemlint
