// pmemlint CLI.
//
//   pmemlint [--root DIR] [--baseline FILE] [--json FILE] [--list-rules]
//            [paths...]
//
// Paths are directories (walked recursively for .cpp/.hpp/.h/.c) or single
// files, relative to --root (default: current directory).  With no paths the
// default scan set is src include bench examples tests — deliberately not
// tools/, so the analyzer's own fixture corpus of known-bad snippets does not
// flag the tree.  Exit status is 1 iff any non-baselined finding (or stale
// baseline entry) exists.
#include "pmemlint.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

namespace fs = std::filesystem;

namespace {

bool source_ext(const fs::path& p) {
  const std::string e = p.extension().string();
  return e == ".cpp" || e == ".hpp" || e == ".h" || e == ".c" || e == ".cc";
}

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string rel_str(const fs::path& p, const fs::path& root) {
  return p.lexically_relative(root).generic_string();
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  std::string baseline_path;
  std::string json_path;
  std::vector<std::string> paths;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* opt) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "pmemlint: " << opt << " needs an argument\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--root") {
      root = fs::path(next("--root"));
    } else if (arg == "--baseline") {
      baseline_path = next("--baseline");
    } else if (arg == "--json") {
      json_path = next("--json");
    } else if (arg == "--quiet" || arg == "-q") {
      quiet = true;
    } else if (arg == "--list-rules") {
      for (const auto& r : pmemlint::rules())
        std::cout << r.id << "\t" << r.summary << "\n";
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: pmemlint [--root DIR] [--baseline FILE] "
                   "[--json FILE] [--quiet] [--list-rules] [paths...]\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "pmemlint: unknown option " << arg << "\n";
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty())
    paths = {"src", "include", "bench", "examples", "tests"};

  std::error_code ec;
  root = fs::canonical(root, ec);
  if (ec) {
    std::cerr << "pmemlint: bad --root: " << ec.message() << "\n";
    return 2;
  }

  pmemlint::Corpus corpus;
  for (const std::string& p : paths) {
    const fs::path abs = root / p;
    if (fs::is_regular_file(abs, ec)) {
      corpus.add(rel_str(abs, root), slurp(abs));
    } else if (fs::is_directory(abs, ec)) {
      std::vector<fs::path> files;
      for (const auto& ent :
           fs::recursive_directory_iterator(abs, ec))
        if (ent.is_regular_file() && source_ext(ent.path()))
          files.push_back(ent.path());
      std::sort(files.begin(), files.end());
      for (const auto& f : files) corpus.add(rel_str(f, root), slurp(f));
    }
    // Missing paths are skipped silently so `pmemlint src include` works in
    // partial checkouts.
  }
  const fs::path tests_cmake = root / "tests" / "CMakeLists.txt";
  if (fs::is_regular_file(tests_cmake, ec))
    corpus.tests_cmake = slurp(tests_cmake);

  std::vector<pmemlint::Finding> findings = pmemlint::run_rules(corpus);

  std::vector<pmemlint::BaselineEntry> baseline;
  if (!baseline_path.empty()) {
    const fs::path bp =
        fs::path(baseline_path).is_absolute() ? fs::path(baseline_path)
                                              : root / baseline_path;
    if (fs::is_regular_file(bp, ec)) baseline = pmemlint::parse_baseline(slurp(bp));
  }
  const std::size_t live = pmemlint::apply_baseline(findings, baseline);

  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::binary);
    out << pmemlint::to_json(findings, baseline);
    if (!out) {
      std::cerr << "pmemlint: cannot write " << json_path << "\n";
      return 2;
    }
  }

  if (!quiet) std::cout << pmemlint::to_human(findings);

  std::size_t stale = 0;
  for (const auto& e : baseline)
    if (!e.used) {
      ++stale;
      std::cerr << "pmemlint: stale baseline entry: " << e.rule << " "
                << e.file << " " << e.context << "\n";
    }

  if (live > 0 || stale > 0) {
    std::cerr << "pmemlint: " << live << " finding(s), " << stale
              << " stale baseline entr(y/ies)\n";
    return 1;
  }
  if (!quiet)
    std::cout << "pmemlint: clean (" << corpus.files.size() << " files, "
              << findings.size() << " baselined finding(s))\n";
  return 0;
}
